#include "serve/slo_tracker.h"

#include <algorithm>

#include "util/common.h"
#include "util/stats.h"

namespace vf::serve {

SloTracker::SloTracker(double deadline_s) : deadline_s_(deadline_s) {
  check(deadline_s > 0.0, "SLO deadline must be positive");
}

void SloTracker::record_completion(RequestRecord r) {
  check(!r.rejected, "use record_rejection for rejected requests");
  check(r.finish_s >= r.arrival_s, "completion before arrival");
  check(r.dispatch_s >= r.arrival_s && r.dispatch_s <= r.finish_s,
        "dispatch stamp must lie between arrival and completion");
  if (r.streamed()) {
    check(r.tokens.size() == r.token_stamps.size(),
          "streamed record must stamp every token");
    check(r.first_token_s >= r.dispatch_s && r.first_token_s <= r.finish_s,
          "first-token stamp must lie between dispatch and completion");
  }
  // A stream's deadline is its TTFT — total latency scales with requested
  // length, so completion time is not the responsiveness SLO.
  r.deadline_met = (r.streamed() ? r.ttft_s() : r.latency_s()) <= deadline_s_;
  if (!r.deadline_met) {
    ++deadline_misses_;
    if (misses_ != nullptr) misses_->add();
  }
  if (r.retries > 0) {
    ++retried_;
    retries_ += r.retries;
  }
  ++completed_;
  if (completions_ != nullptr) completions_->add();
  if (latency_hist_ != nullptr) latency_hist_->observe(r.latency_s());
  if (queue_wait_hist_ != nullptr) queue_wait_hist_->observe(r.queue_wait_s);
  records_.push_back(std::move(r));
}

void SloTracker::record_rejection(const InferRequest& r, double now_s) {
  RequestRecord rec;
  rec.id = r.id;
  rec.arrival_s = r.arrival_s;
  // A rejection leaves the system the instant it is bounced: stamp
  // dispatch = finish = the rejection time. Leaving dispatch_s at zero
  // made inflight_s() read as now_s — a wall-clock-sized garbage value
  // that poisoned any aggregate mixing rejected records in.
  rec.dispatch_s = now_s;
  rec.queue_wait_s = now_s - r.arrival_s;
  rec.finish_s = now_s;
  rec.rejected = true;
  rec.deadline_met = false;
  ++rejected_;
  if (rejections_ != nullptr) rejections_->add();
  records_.push_back(std::move(rec));
}

void SloTracker::set_metrics(obs::MetricsRegistry* metrics,
                             const std::string& prefix) {
  if (metrics == nullptr) {
    completions_ = rejections_ = misses_ = nullptr;
    latency_hist_ = queue_wait_hist_ = nullptr;
    return;
  }
  completions_ = &metrics->counter(prefix + "requests.completed");
  rejections_ = &metrics->counter(prefix + "requests.rejected");
  misses_ = &metrics->counter(prefix + "requests.deadline_misses");
  // Fixed edges spanning 1 ms .. 10 s of virtual latency — wide enough for
  // every serving scenario in bench/, stable so snapshots stay comparable.
  static const std::vector<double> kLatencyEdges = {
      0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0};
  latency_hist_ = &metrics->histogram(prefix + "latency_s", kLatencyEdges);
  queue_wait_hist_ = &metrics->histogram(prefix + "queue_wait_s", kLatencyEdges);
}

void SloTracker::export_summary(const SloSummary& s, obs::MetricsRegistry& metrics,
                                const std::string& prefix, double now_s) {
  const auto set = [&](const char* name, double v) {
    metrics.gauge(prefix + "slo." + name).set(v, now_s);
  };
  set("completed", static_cast<double>(s.completed));
  set("rejected", static_cast<double>(s.rejected));
  set("deadline_misses", static_cast<double>(s.deadline_misses));
  set("retried", static_cast<double>(s.retried));
  set("retries", static_cast<double>(s.retries));
  set("hit_rate", s.hit_rate);
  set("p50_s", s.p50_s);
  set("p95_s", s.p95_s);
  set("p99_s", s.p99_s);
  set("mean_s", s.mean_s);
  set("mean_queue_wait_s", s.mean_queue_wait_s);
  set("p99_queue_wait_s", s.p99_queue_wait_s);
  set("mean_inflight_s", s.mean_inflight_s);
  set("streams", static_cast<double>(s.streams));
  set("tokens", static_cast<double>(s.tokens));
  set("p50_ttft_s", s.p50_ttft_s);
  set("p99_ttft_s", s.p99_ttft_s);
  set("mean_itl_s", s.mean_itl_s);
}

std::int64_t SloTracker::completed() const { return completed_; }
std::int64_t SloTracker::rejected() const { return rejected_; }

namespace {
/// Projects `metric` over every completed (non-rejected) record.
template <typename Metric>
std::vector<double> completed_samples(const std::vector<RequestRecord>& records,
                                      Metric metric) {
  std::vector<double> xs;
  xs.reserve(records.size());
  for (const RequestRecord& r : records)
    if (!r.rejected) xs.push_back(metric(r));
  return xs;
}

/// Percentile with serving edge-case semantics: an empty sample set has no
/// latency (0.0, never a throw/NaN); util/stats handles one sample and
/// all-identical samples exactly (any percentile is the common value).
double safe_percentile(const std::vector<double>& xs, double p) {
  return xs.empty() ? 0.0 : percentile(xs, p);
}
}  // namespace

double SloTracker::latency_percentile_s(double p) const {
  return safe_percentile(
      completed_samples(records_, [](const RequestRecord& r) { return r.latency_s(); }),
      p);
}

double SloTracker::queue_wait_percentile_s(double p) const {
  return safe_percentile(
      completed_samples(records_,
                        [](const RequestRecord& r) { return r.queue_wait_s; }),
      p);
}

SloSummary SloTracker::summary() const {
  SloSummary s;
  s.completed = completed_;
  s.rejected = rejected_;
  s.deadline_misses = deadline_misses_;
  s.retried = retried_;
  s.retries = retries_;
  const std::vector<double> xs = completed_samples(
      records_, [](const RequestRecord& r) { return r.latency_s(); });
  if (!xs.empty()) {
    // Sort each sample set once and read every percentile off it (the
    // read-outs are bit-equal to one percentile() call per p, which
    // re-sorted a by-value copy five times per summary).
    const std::vector<double> lat_ps = percentiles(xs, {0.50, 0.95, 0.99});
    s.p50_s = lat_ps[0];
    s.p95_s = lat_ps[1];
    s.p99_s = lat_ps[2];
    s.mean_s = mean(xs);
    s.max_s = max_of(xs);
    s.hit_rate = static_cast<double>(completed_ - deadline_misses_) /
                 static_cast<double>(completed_);
    const std::vector<double> waits = completed_samples(
        records_, [](const RequestRecord& r) { return r.queue_wait_s; });
    const std::vector<double> inflight = completed_samples(
        records_, [](const RequestRecord& r) { return r.inflight_s(); });
    s.mean_queue_wait_s = mean(waits);
    const std::vector<double> wait_ps = percentiles(waits, {0.95, 0.99});
    s.p95_queue_wait_s = wait_ps[0];
    s.p99_queue_wait_s = wait_ps[1];
    s.mean_inflight_s = mean(inflight);
  }

  // Streaming read-outs: TTFT per completed stream, ITL per consecutive
  // token pair within each stream.
  std::vector<double> ttft;
  std::vector<double> itl;
  for (const RequestRecord& r : records_) {
    if (r.rejected || !r.streamed()) continue;
    ++s.streams;
    s.tokens += static_cast<std::int64_t>(r.tokens.size());
    ttft.push_back(r.ttft_s());
    for (std::size_t i = 1; i < r.token_stamps.size(); ++i)
      itl.push_back(r.token_stamps[i] - r.token_stamps[i - 1]);
  }
  if (!ttft.empty()) {
    const std::vector<double> ttft_ps = percentiles(ttft, {0.50, 0.95, 0.99});
    s.p50_ttft_s = ttft_ps[0];
    s.p95_ttft_s = ttft_ps[1];
    s.p99_ttft_s = ttft_ps[2];
  }
  if (!itl.empty()) {
    s.mean_itl_s = mean(itl);
    s.p99_itl_s = percentile(itl, 0.99);
  }
  return s;
}

}  // namespace vf::serve
