// TokenStreamer: per-VN autoregressive sequence state for token serving.
//
// A token stream runs the paper's serving machinery as an autoregressive
// loop on the virtual clock: prepare features -> forward -> sample from
// the logits (greedy argmax) -> append, once per token. The loop is laid
// onto the continuous-batching slot machinery as a slice CHAIN:
//
//   PREFILL  one long slice of the whole prompt (prompt_tokens feature
//            rows) admits the request into a free VN slot; its completion
//            stamps the FIRST token (TTFT).
//   DECODE   short single-row slices re-admitted into the SAME slot
//            (SlotLedger::readmit — the slot never goes free mid-stream),
//            one per remaining token; each completion stamps one token.
//
// Disaggregating the two phases is what the serving scheduler exploits:
// decode slices are memory-bandwidth-bound (decode_pass_time_s) and
// near-constant-cost, so a stream can be PAUSED at any token boundary —
// its state parked here, its slot lent to a waiting prefill — and resumed
// later without recompute, the vLLM-style token-boundary preemption that
// keeps TTFT low under load.
//
// Determinism contract: sampling is greedy argmax (a pure function of the
// forward pass, itself bit-stable across worker counts), the next token's
// feature row is a fixed hash of (request, position, last token), and all
// state transitions are driven by the caller's virtual-clock event order.
// Per-token records replay bit-identically across num_threads.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/dispatch.h"
#include "serve/request.h"
#include "serve/slot_ledger.h"

namespace vf::serve {

/// Scheduling policy for token streams (ServerConfig/ColocationConfig).
struct StreamPolicy {
  /// Disaggregated prefill/decode scheduling: admission-class work (the
  /// queue) may preempt a stream at a token boundary — when every slot is
  /// busy and a stream heads the queue, the decode chain with the freshest
  /// completion pauses and lends its slot to the waiting prefill. False
  /// serves streams strictly FIFO: a stream holds its slot from prefill to
  /// last token, and arrivals wait for natural completions — the baseline
  /// arm of bench_streaming's TTFT A/B.
  bool disaggregate = true;
};

/// One in-flight (or paused) token stream.
struct SequenceState {
  InferRequest request;
  std::int64_t generated = 0;   ///< tokens sampled so far
  std::int64_t last_token = 0;  ///< most recent sample (feeds the next row)
  double dispatch_s = 0.0;      ///< prefill admission stamp (queue exit)
  double first_token_s = 0.0;   ///< prefill completion stamp
  double compute_s = 0.0;       ///< accumulated over the slice chain
  double comm_s = 0.0;          ///< accumulated over the slice chain
  std::vector<std::int64_t> tokens;
  std::vector<double> token_stamps;
};

class TokenStreamer {
 public:
  /// `total_vns` sizes the per-slot state table; `pool_size` is the
  /// request-pool row count the feature schedule wraps around.
  TokenStreamer(std::int64_t total_vns, std::int64_t pool_size);

  static bool is_stream(const InferRequest& r) { return r.stream_tokens > 0; }

  /// Admits stream `r` into slot `vn`: installs fresh sequence state and
  /// dispatches the prefill slice (all prompt_tokens rows at once) for the
  /// caller to ledger-admit.
  Slot prefill(SliceDispatcher& dispatcher, std::int32_t vn, double now_s,
               std::vector<double>& device_free, InferRequest r);

  /// Absorbs a finished prefill/decode slice on `vn`: samples the token
  /// (greedy argmax of the slice's last row), stamps it at the slice's
  /// completion, accumulates cost. Returns true while the stream wants
  /// more tokens (i.e. a decode continuation should follow).
  bool absorb(std::int32_t vn, const Slot& done);

  /// Dispatches the next single-token decode slice of the live stream on
  /// `vn`, for the caller to ledger-readmit into the same slot.
  Slot next_decode(SliceDispatcher& dispatcher, std::int32_t vn, double now_s,
                   std::vector<double>& device_free);

  /// Token-boundary preemption: parks the live stream on `vn` (FIFO among
  /// paused streams), freeing the slot for admission-class work.
  void pause(std::int32_t vn);
  bool has_paused() const { return !paused_.empty(); }
  /// Parked streams — in flight for load accounting (each holds exactly
  /// one un-served request), just not occupying a slot.
  std::int64_t paused_streams() const {
    return static_cast<std::int64_t>(paused_.size());
  }

  /// Un-parks the oldest paused stream into free slot `vn` and dispatches
  /// its next decode slice, for the caller to ledger-admit.
  Slot resume(SliceDispatcher& dispatcher, std::int32_t vn, double now_s,
              std::vector<double>& device_free);

  /// Retires the completed stream on `vn` and assembles its record
  /// (dispatch = prefill admission, finish = last token's stamp).
  RequestRecord finish(std::int32_t vn);

  /// Fault recovery: aborts the live stream on `vn` whose PREFILL was
  /// evicted (no token landed yet) and returns the request for requeueing.
  /// Streams that already stamped tokens must pause() instead — resume
  /// re-dispatches only the lost token, never recomputes landed ones.
  InferRequest cancel(std::int32_t vn);

  /// Fault recovery: stamps one survived eviction on the live stream on
  /// `vn` (carried into its record's `retries`). Called before pausing a
  /// decode chain whose in-flight slice was evicted.
  void mark_retry(std::int32_t vn);

  /// Whether slot `vn` currently hosts a live (un-paused) stream.
  bool active(std::int32_t vn) const;

 private:
  /// Deterministic feature schedule of the next decode step: a fixed hash
  /// of (request payload, position, last sampled token) into the request
  /// pool — autoregressive in that each sampled token perturbs the next
  /// step's input, while staying a pure function of replayed state.
  std::int64_t feature_row(const SequenceState& s) const;

  std::vector<SequenceState> seq_;  ///< indexed by VN slot
  std::vector<char> live_;          ///< seq_[vn] holds a live stream
  std::deque<SequenceState> paused_;
  std::int64_t pool_size_;
};

}  // namespace vf::serve
