#include "serve/request_queue.h"

#include "util/common.h"

namespace vf::serve {

RequestQueue::RequestQueue(std::int64_t capacity) : capacity_(capacity) {
  check(capacity > 0, "request queue capacity must be positive");
}

void RequestQueue::set_reject_observer(
    std::function<void(const InferRequest&, double)> observer) {
  reject_observer_ = std::move(observer);
}

void RequestQueue::set_deadline(double deadline_s) {
  check(deadline_s > 0.0, "shed deadline must be positive");
  deadline_s_ = deadline_s;
  shed_enabled_ = true;
}

bool RequestQueue::reject(const InferRequest& r, double now_s) {
  ++rejected_;
  if (reject_observer_) reject_observer_(r, now_s);
  return false;
}

bool RequestQueue::push(const InferRequest& r) { return push(r, r.arrival_s); }

bool RequestQueue::push(const InferRequest& r, double now_s) {
  if (shed_enabled_ && now_s - r.arrival_s > deadline_s_) {
    ++shed_;
    return reject(r, now_s);
  }
  if (size() >= capacity_) return reject(r, now_s);
  check(q_.empty() || q_.back().arrival_s <= r.arrival_s,
        "requests must be admitted in arrival order");
  q_.push_back(r);
  ++admitted_;
  return true;
}

void RequestQueue::push_front(const InferRequest& r) {
  check(q_.empty() || r.arrival_s <= q_.front().arrival_s,
        "requeued request must not be younger than the queue head");
  q_.push_front(r);
  ++requeued_;
}

std::vector<InferRequest> RequestQueue::pop(std::int64_t n) {
  check(n >= 0 && n <= size(), "pop count " + std::to_string(n) +
                                   " exceeds queue depth " + std::to_string(size()));
  std::vector<InferRequest> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    out.push_back(q_.front());
    q_.pop_front();
  }
  return out;
}

const InferRequest& RequestQueue::front() const {
  check(!q_.empty(), "front() on empty request queue");
  return q_.front();
}

const InferRequest& RequestQueue::at(std::int64_t i) const {
  check_index(i, size(), "queue position");
  return q_[static_cast<std::size_t>(i)];
}

}  // namespace vf::serve
