// SlotLedger: per-virtual-node slot accounting for continuous batching.
//
// Where the batch-boundary BatchFormer drains a FIFO prefix all at once,
// continuous batching treats every virtual node as an independent slot: a
// slice of requests is admitted into a free slot the moment one exists,
// runs to its own completion time, and frees the slot for the next slice
// — arrivals join the partially-formed in-flight batch instead of waiting
// for the next full drain.
//
// Determinism contract (same as the rest of vf::serve): every transition
// is driven by the virtual clock and resolved in a fixed order — admission
// takes the FIFO queue prefix (ascending request id by construction),
// free slots are claimed in ascending VN-id order, and due completions
// are processed in (completion time, VN id) order. Host threads never
// enter the picture; the in-flight schedule is a pure function of
// (trace, policy, cost model).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/metrics.h"
#include "serve/request.h"

namespace vf::serve {

/// Virtual-clock schedule of one continuously batched slice dispatch.
struct SliceSchedule {
  double start_s = 0.0;    ///< when the device begins the pass
  double compute_s = 0.0;  ///< forward time actually charged (warm or cold)
  double done_s = 0.0;     ///< completion incl. the logits return
  bool warm = false;       ///< amortized dispatch (device was mid-pass)
};

/// The warm/cold dispatch pricing rule shared by the single-model Server
/// and the multi-model ColocatedServer (one definition so the two price
/// models can never silently diverge): a slice landing on a device that
/// is still mid-pass (`device_free_s > now_s`) pipelines behind it — the
/// per-dispatch framework overhead hides under the running pass and only
/// the forward time is charged; a cold dispatch (idle device) pays the
/// full overhead. Pure function of virtual-clock state.
inline SliceSchedule price_slice_dispatch(double now_s, double device_free_s,
                                          const SliceCost& cost) {
  SliceSchedule s;
  s.warm = device_free_s > now_s;
  s.compute_s = cost.pass_s + (s.warm ? 0.0 : cost.overhead_s);
  s.start_s = now_s > device_free_s ? now_s : device_free_s;
  s.done_s = s.start_s + s.compute_s + cost.comm_s;
  return s;
}

/// One in-flight slice occupying a virtual-node slot.
struct Slot {
  bool busy = false;
  SliceKind kind = SliceKind::kClassify;  ///< scheduling class of the slice
  double dispatch_s = 0.0;  ///< when the slice was admitted into the slot
  double done_s = 0.0;      ///< scheduled completion on the virtual clock
  /// Device count that hosts the slice: 1 — a single-VN slice runs on the
  /// one device its VN maps to (it used to misreport the full device-set
  /// size, so per-event accounting disagreed with the per-device trace).
  std::int64_t devices = 0;
  std::int64_t device = -1; ///< hosting device id under the dispatch mapping
  bool warm = false;        ///< warm/cold dispatch pricing (see SliceSchedule)
  double compute_s = 0.0;   ///< cost-model forward time of the slice
  double comm_s = 0.0;      ///< logits-return time of the slice
  /// TraceRecorder span index of this slice's dispatch (obs/trace.h);
  /// obs::TraceRecorder::kNoSpan when no recorder was attached.
  std::int64_t trace_span = -1;
  std::vector<InferRequest> requests;  ///< FIFO order within the slice
  std::vector<std::int64_t> predictions;  ///< one per request, same order
};

class SlotLedger {
 public:
  /// One slot per virtual node. The VN count is stable across elastic
  /// resizes (resize remaps VNs onto devices, never changes them), so a
  /// ledger survives any number of reconfigurations.
  explicit SlotLedger(std::int64_t total_vns);

  std::int64_t total_slots() const { return static_cast<std::int64_t>(slots_.size()); }
  std::int64_t busy_count() const { return busy_; }
  bool all_free() const { return busy_ == 0; }
  /// Requests currently in flight across all busy slots. The elasticity
  /// loop adds this to the queue depth when deciding to *shrink*: a queue
  /// can be momentarily empty while a full in-flight batch is mid-pass,
  /// and shrinking on that illusion of idleness makes the device set
  /// oscillate under load.
  std::int64_t inflight_requests() const { return inflight_; }

  /// Lowest-id free slot, or -1 when every slot is in flight. Claiming
  /// the lowest VN id first is part of the determinism contract.
  std::int32_t lowest_free() const;

  /// Earliest scheduled completion over busy slots; +infinity when idle.
  double earliest_done_s() const;

  /// Admit transition: occupy slot `vn` with a slice dispatched at
  /// `slot.dispatch_s` and completing at `slot.done_s`. The slot must be
  /// free, hold at least one request, and respect dispatch_s <= done_s.
  void admit(std::int32_t vn, Slot slot);

  /// VN ids of every slot due at or before `now_s`, in (done_s, VN id)
  /// order — the canonical completion-processing order.
  std::vector<std::int32_t> due(double now_s) const;

  /// Complete transition: free slot `vn` (which must be busy) and return
  /// the slice it held.
  Slot complete(std::int32_t vn);

  /// Readmit transition: atomically swap the finished slice in busy slot
  /// `vn` for its continuation `next`, returning the finished slice. This
  /// is how a token stream's decode chain holds its slot: the slot never
  /// passes through the free state between slices, so no queued admission
  /// can steal it mid-stream. The slot must be busy and already due
  /// (slot.done_s <= next.dispatch_s); `next` obeys the same invariants as
  /// an admitted slice.
  Slot readmit(std::int32_t vn, Slot next);

  /// Evict transition (fault recovery): free busy slot `vn` whose slice
  /// will never complete — its device died — and return the slice so the
  /// caller can requeue the requests. Identical bookkeeping to complete()
  /// but counted separately (an eviction is not a served slice) and legal
  /// at any stamp, including before the slice's scheduled done_s.
  Slot evict(std::int32_t vn);

  /// Read-only view of slot `vn` (busy or free).
  const Slot& slot(std::int32_t vn) const;

  /// Attaches admit/readmit/complete transition counters under
  /// `prefix` ("<prefix>slots.admits" etc). The registry must outlive the
  /// ledger; counter pointers are cached here so the transitions stay
  /// allocation-free. Null detaches.
  void set_metrics(obs::MetricsRegistry* metrics, const std::string& prefix);

 private:
  std::vector<Slot> slots_;
  std::int64_t busy_ = 0;
  std::int64_t inflight_ = 0;
  // Cached instrument pointers (null = off); see set_metrics.
  obs::Counter* admits_ = nullptr;
  obs::Counter* readmits_ = nullptr;
  obs::Counter* completes_ = nullptr;
  obs::Counter* evictions_ = nullptr;
};

}  // namespace vf::serve
