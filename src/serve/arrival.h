// Seeded open-loop arrival traces for serving experiments.
//
// Open loop means arrivals are independent of service: the trace is fixed
// up front (Poisson process via CounterRng — inter-arrival gaps are
// exponential, example payloads uniform over the request pool), so a slow
// server builds queue depth instead of slowing the workload down. That is
// both the standard serving-benchmark methodology and what makes replays
// bit-exact: the trace is a pure function of (seed, rates, pool size).
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request.h"

namespace vf::serve {

/// One phase of a piecewise-constant-rate Poisson arrival process.
struct TracePhase {
  double rate_rps = 100.0;  ///< mean arrival rate, requests per virtual second
  double duration_s = 1.0;  ///< phase length on the virtual clock
};

/// Constant-rate Poisson trace of exactly `count` requests starting at
/// virtual time 0. Payload indices are uniform over [0, example_pool).
std::vector<InferRequest> poisson_trace(std::uint64_t seed, double rate_rps,
                                        std::int64_t count,
                                        std::int64_t example_pool);

/// Piecewise-constant-rate Poisson trace (e.g. steady -> burst -> steady,
/// the shape that exercises queue-depth-triggered elasticity). Arrivals
/// falling past the final phase boundary are dropped.
std::vector<InferRequest> phased_poisson_trace(std::uint64_t seed,
                                               const std::vector<TracePhase>& phases,
                                               std::int64_t example_pool);

/// Token-stream request shape for streaming_trace. Each request draws a
/// stream coin (stream_fraction), a prompt length uniform over
/// [prompt_min, prompt_max], and a total token count uniform over
/// [tokens_min, tokens_max] — all from a dedicated RNG stream, so the
/// shape annotation never perturbs the gap/payload draws of the
/// underlying Poisson trace (a streaming trace and a classify trace from
/// the same seed share arrival stamps and payloads exactly).
struct StreamShape {
  double stream_fraction = 1.0;   ///< probability a request is a stream
  std::int64_t prompt_min = 8;    ///< prompt tokens, inclusive range
  std::int64_t prompt_max = 32;
  std::int64_t tokens_min = 4;    ///< total generated tokens, inclusive range
  std::int64_t tokens_max = 16;
};

/// Phased Poisson trace of token-streaming requests: phased_poisson_trace
/// arrivals annotated with StreamShape draws. Requests losing the stream
/// coin stay plain classify requests (prompt/stream tokens zero).
std::vector<InferRequest> streaming_trace(std::uint64_t seed,
                                          const std::vector<TracePhase>& phases,
                                          std::int64_t example_pool,
                                          const StreamShape& shape);

}  // namespace vf::serve
