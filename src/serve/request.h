// Inference request/record types for the vf::serve subsystem.
//
// Serving reuses the virtual-node decoupling the paper built for training:
// a request batch is packed onto virtual nodes, and the VN -> device
// mapping (which may change at any moment via an elastic resize) decides
// where the forward passes run. Everything here lives on the *virtual*
// clock: arrival stamps come from a seeded open-loop trace, service times
// from the analytic cost model, so a serving run is a pure function of
// (trace, policy, model, mapping) and replays bit-identically.
#pragma once

#include <cstdint>

namespace vf::serve {

/// One single-example inference request. The payload is an index into the
/// request pool dataset (src/data/dataset.h generates example features
/// deterministically on demand), which keeps traces compact and replayable.
struct InferRequest {
  std::int64_t id = 0;            ///< trace position; unique per run
  double arrival_s = 0.0;         ///< arrival stamp on the virtual clock
  std::int64_t example_index = 0; ///< payload: request-pool example
};

/// Per-request accounting recorded by the SloTracker once a request leaves
/// the system (served or rejected at admission).
struct RequestRecord {
  std::int64_t id = 0;
  double arrival_s = 0.0;
  double dispatch_s = 0.0;    ///< left the queue: batch execution start, or
                              ///< admission into an in-flight VN slot
  double queue_wait_s = 0.0;  ///< arrival -> dispatch (= dispatch_s - arrival_s)
  double compute_s = 0.0;     ///< cost-model forward time of its batch/slice
  double comm_s = 0.0;        ///< logits return of its batch/slice
  double finish_s = 0.0;      ///< virtual completion stamp
  std::int64_t prediction = -1;
  bool rejected = false;      ///< bounced at admission (queue full)
  bool deadline_met = false;

  double latency_s() const { return finish_s - arrival_s; }
  /// Time spent inside the system after leaving the queue (in a forming
  /// batch's execution or an in-flight slot): latency minus queue wait.
  double inflight_s() const { return finish_s - dispatch_s; }
};

}  // namespace vf::serve
