// Inference request/record types for the vf::serve subsystem.
//
// Serving reuses the virtual-node decoupling the paper built for training:
// a request batch is packed onto virtual nodes, and the VN -> device
// mapping (which may change at any moment via an elastic resize) decides
// where the forward passes run. Everything here lives on the *virtual*
// clock: arrival stamps come from a seeded open-loop trace, service times
// from the analytic cost model, so a serving run is a pure function of
// (trace, policy, model, mapping) and replays bit-identically.
//
// Two request shapes share the pipeline:
//   * classify (stream_tokens == 0): one forward pass, one prediction —
//     the single-shot workload every PR before token streaming served.
//   * token stream (stream_tokens > 0): an autoregressive run loop. One
//     long PREFILL slice (prompt_tokens feature rows) admits the request
//     into a VN slot and samples the first token; a chain of short DECODE
//     slices (one row each) then streams the remaining tokens through the
//     same slot, each slice's completion stamping one token.
#pragma once

#include <cstdint>
#include <vector>

namespace vf::serve {

/// The scheduling class of a dispatched slice. Classify and prefill are
/// admission-class work (they take a request off the queue); decode slices
/// are continuation-class (they re-admit a stream into its own slot). The
/// disaggregated scheduling policy (StreamPolicy) ranks the classes.
enum class SliceKind : std::uint8_t { kClassify, kPrefill, kDecode };

/// One inference request. The payload is an index into the request pool
/// dataset (src/data/dataset.h generates example features deterministically
/// on demand), which keeps traces compact and replayable.
struct InferRequest {
  std::int64_t id = 0;            ///< trace position; unique per run
  double arrival_s = 0.0;         ///< arrival stamp on the virtual clock
  std::int64_t example_index = 0; ///< payload: request-pool example
  /// Prompt length of a token stream (prefill feature rows); ignored for
  /// classify requests.
  std::int64_t prompt_tokens = 0;
  /// Total tokens to generate. 0 = single-shot classify; N >= 1 streams N
  /// tokens: the first sampled at the prefill's completion, the rest by
  /// N - 1 decode slices.
  std::int64_t stream_tokens = 0;

  /// Fault-recovery accounting (src/fault/). A device kill evicts the
  /// request's in-flight slice and requeues it: `retries` counts those
  /// round-trips, `requeue_s` stamps the latest re-entry into the queue,
  /// and `queue_wait_accum_s` accumulates the waits that preceded each
  /// failed dispatch — so the final record's queue_wait_s stays the honest
  /// total time spent queued, not just the last stretch.
  std::int64_t retries = 0;
  double requeue_s = 0.0;
  double queue_wait_accum_s = 0.0;

  /// Stamp the request last entered the queue: `requeue_s` after a fault
  /// eviction, the arrival otherwise.
  double enqueued_s() const { return retries > 0 ? requeue_s : arrival_s; }
};

/// Per-request accounting recorded by the SloTracker once a request leaves
/// the system (served or rejected at admission).
struct RequestRecord {
  std::int64_t id = 0;
  double arrival_s = 0.0;
  double dispatch_s = 0.0;    ///< left the queue: batch execution start, or
                              ///< admission into an in-flight VN slot
  double queue_wait_s = 0.0;  ///< total time queued: arrival -> dispatch, plus
                              ///< any earlier waits before fault-evicted
                              ///< dispatches (see InferRequest::retries)
  double compute_s = 0.0;     ///< cost-model forward time of its batch/slice
                              ///< (summed over a stream's slices)
  double comm_s = 0.0;        ///< logits return of its batch/slice (summed)
  double finish_s = 0.0;      ///< virtual completion stamp
  std::int64_t prediction = -1;  ///< classify: argmax; stream: last token
  bool rejected = false;      ///< bounced at admission (queue full or expired)
  bool deadline_met = false;  ///< classify: latency SLO; stream: TTFT SLO
  std::int64_t retries = 0;   ///< fault evictions survived before completing

  /// Token stream accounting; all empty/zero for classify requests.
  double first_token_s = 0.0;  ///< prefill completion (first token) stamp
  std::vector<std::int64_t> tokens;  ///< greedily sampled token ids, in order
  std::vector<double> token_stamps;  ///< per-token completion stamps (same order)

  bool streamed() const { return !token_stamps.empty(); }
  double latency_s() const { return finish_s - arrival_s; }
  /// Time-to-first-token: arrival until the prefill's token lands — the
  /// latency a streaming client perceives as responsiveness.
  double ttft_s() const { return first_token_s - arrival_s; }
  /// Time spent inside the system after leaving the queue (in a forming
  /// batch's execution or an in-flight slot): latency minus queue wait.
  double inflight_s() const { return finish_s - dispatch_s; }
};

}  // namespace vf::serve
