#include "serve/batch_former.h"

#include <algorithm>

#include "util/common.h"

namespace vf::serve {

BatchFormer::BatchFormer(BatchPolicy policy) : policy_(policy) {
  check(policy_.max_batch > 0, "batch policy max_batch must be positive");
  check(policy_.max_wait_s >= 0.0, "batch policy max_wait_s must be non-negative");
}

std::int64_t BatchFormer::ready_count(const RequestQueue& q, double now_s) const {
  if (q.empty()) return 0;
  if (q.size() >= policy_.max_batch) return policy_.max_batch;
  if (now_s >= q.front().arrival_s + policy_.max_wait_s) return q.size();
  return 0;
}

double BatchFormer::timeout_deadline_s(const RequestQueue& q) const {
  return q.front().arrival_s + policy_.max_wait_s;
}

std::vector<VnPack> BatchFormer::pack(std::int64_t count,
                                      const VnMapping& mapping) const {
  check(count > 0, "cannot pack an empty batch");
  check(count <= mapping.global_batch(),
        "batch of " + std::to_string(count) + " exceeds serving capacity " +
            std::to_string(mapping.global_batch()));
  std::vector<VnPack> packs;
  std::int64_t next = 0;
  for (std::int32_t vn = 0; vn < mapping.total_vns() && next < count; ++vn) {
    const std::int64_t take = std::min(mapping.vn_batch(vn), count - next);
    VnPack p;
    p.vn = vn;
    p.positions.resize(static_cast<std::size_t>(take));
    for (std::int64_t k = 0; k < take; ++k)
      p.positions[static_cast<std::size_t>(k)] = next + k;
    next += take;
    packs.push_back(std::move(p));
  }
  check(next == count, "pack failed to place every request");
  return packs;
}

}  // namespace vf::serve
