// Multi-model co-location: several models' virtual nodes multiplexed onto
// ONE shared physical device set.
//
// The paper's decoupling makes this almost free conceptually: a model
// only ever names virtual nodes, so two models are just two independent
// VN sets that happen to resolve onto the same devices (the transparent-
// virtualization direction FlexNPU pushes for co-located LLM serving).
// What a co-located deployment adds over two dedicated servers is
// *statistical multiplexing*: when model A bursts while model B idles, A
// borrows the whole device set instead of being capped at its dedicated
// half — bench_colocation measures exactly that trade against two
// dedicated half-size device sets.
//
//   ModelRegistry (name, engine, request pool, per-model SLO/queue/batch/share)
//        |                        2+ models
//        v
//   ColocatedServer ── per-model RequestQueue + SloTracker + SlotLedger
//        |              + TokenStreamer; one shared virtual clock +
//        |              per-device free times + per-model share ledger
//        v
//   share-weighted deadline arbiter ── shared elastic budget (sched/elastic.h)
//
// Arbiter rule (the determinism contract's core): whenever slots are
// free, dispatchable slices are claimed in ascending
//
//     (deadline key + share debt, model id, VN id)
//
// order. A model's deadline key is its oldest queued request's arrival
// stamp plus the model's SLO; the share debt is the model's cumulative
// device time normalized by its configured weight (ModelConfig::share).
// Under contention the debt term dominates — a model that has consumed
// more than its weighted share of device time accumulates debt faster and
// yields the next slot — which is what fixes the small-batch starvation
// the deadline-only arbiter had: a small-batch model's cheap slices let
// an aggressive co-tenant's deadline keys always look more urgent, and
// the small model fell arbitrarily far below any intended split. With
// balanced consumption the debts advance in lockstep and the rule reduces
// to the old earliest-deadline order. An idle model's debt snaps up to
// the system's virtual time when it re-activates, so idling never banks
// credit (standard start-time fair queueing hygiene).
//
// Completions are processed in (completion time, model id, VN id) order,
// arrivals admitted in model-id order at equal stamps. Every decision is
// a pure function of (traces, policies, cost model) on the virtual clock
// — the full per-model record streams replay bit-identically across host
// worker counts, in both batching modes, exactly like the single-model
// Server. Token streams (serve/streaming.h) ride the continuous mode:
// per-model prefill/decode chains compete through the same arbiter, and
// every dispatch — prefill, decode, resume, classify — is charged to its
// model's share ledger.
//
// Elasticity is a SHARED budget: grow/shrink decisions come from the
// combined backlog (sum of queue depths) plus combined in-flight load via
// the same hysteresis rule the single-model server uses
// (sched::elastic_resize_target), and a resize moves every engine to the
// same device count — the engines stay in lockstep on the shared device
// set. In-flight slices keep the completion times their dispatch-time
// mapping scheduled (the resize is seamless, like the single-model
// server's).
//
// Migration is ROLLING: the models' state all-gathers ride the same
// shared links, so they serialize — most-loaded model first (combined
// backlog order, model id tie-break) — and each model's NEW dispatches
// resume the moment its own state has landed, instead of every model
// stalling for the sum. The urgent model therefore pays exactly the
// migration price a dedicated server would have charged it, and the
// quiet models absorb the queueing. (The single-model Server jumps its
// clock by the whole migration; with one model the two policies
// coincide.) A resize is also atomic: no new resize decision fires until
// the last model has cut over. A mid-stream decode chain stalls during
// its model's cutover window and resumes at the cutover stamp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/dataset.h"
#include "sched/lease.h"
#include "serve/batch_former.h"
#include "serve/dispatch.h"
#include "serve/request_queue.h"
#include "serve/server.h"
#include "serve/slo_tracker.h"
#include "serve/slot_ledger.h"
#include "serve/streaming.h"

namespace vf::serve {

/// Per-model serving configuration within a co-located deployment.
struct ModelConfig {
  std::string name = "model";     ///< label for tables and diagnostics
  std::int64_t queue_capacity = 1024;
  BatchPolicy batch;              ///< size-or-timeout policy for this model
  double deadline_s = 0.5;        ///< per-request SLO; base of the arbiter key
  /// Device-time share weight of the continuous arbiter. Shares are
  /// relative (normalized over the registered models): under sustained
  /// contention each model's consumed device time converges to
  /// share / Σ shares of the total, regardless of how its slice costs
  /// compare to its co-tenants'. Must be positive.
  double share = 1.0;
  /// Deadline-aware load shedding at admission for this model (see
  /// ServerConfig::shed_expired). Off by default.
  bool shed_expired = false;
};

/// Binds each co-located model's engine, request pool, and config under a
/// dense model id (registration order). Engines and pools must outlive the
/// registry and any server built on it; each engine may appear only once
/// (its virtual nodes are one model's identity).
class ModelRegistry {
 public:
  std::int32_t add(VirtualFlowEngine& engine, const Dataset& request_pool,
                   ModelConfig config);

  std::int64_t size() const { return static_cast<std::int64_t>(entries_.size()); }
  VirtualFlowEngine& engine(std::int32_t m) const;
  const Dataset& pool(std::int32_t m) const;
  const ModelConfig& config(std::int32_t m) const;

 private:
  struct Entry {
    VirtualFlowEngine* engine = nullptr;
    const Dataset* pool = nullptr;
    ModelConfig config;
  };
  std::vector<Entry> entries_;
};

/// Configuration of the shared device set.
struct ColocationConfig {
  /// Shared elastic budget over the co-located device set. Watermarks act
  /// on the COMBINED backlog (and, for shrink, combined in-flight load).
  ElasticPolicy elastic;
  /// Continuous (per-VN slot) batching — co-location's native mode: slots
  /// of every model compete for devices at slice granularity. False
  /// serializes whole formed batches (each on the full device set) in
  /// deadline order — the batch-boundary baseline (deadline-only: the
  /// share-weighted arbiter and token streams are continuous-mode
  /// features).
  bool continuous = true;
  /// Token-stream scheduling (prefill/decode disaggregation), applied
  /// per model in continuous mode.
  StreamPolicy stream;
};

/// Serves the registered models (typically 2+; a single model is a legal
/// degenerate case equivalent to a continuous-mode Server) on one shared
/// device set. One replay per server, same one-shot contract as the
/// single-model Server.
class ColocatedServer : public sched::DeviceLease {
 public:
  /// All engines must start on identical device counts (they stay in
  /// lockstep through shared resizes). Engines, pools, and the registry
  /// must outlive the server.
  ColocatedServer(ModelRegistry& registry, ColocationConfig config);

  ColocatedServer(const ColocatedServer&) = delete;
  ColocatedServer& operator=(const ColocatedServer&) = delete;

  /// Attaches observability sinks (obs/obs.h; either pointer may be null)
  /// before replay(). Spans carry each slice's model id; per-model metrics
  /// live under "serve.<model name>."; shared-set events (resizes, the
  /// devices gauge) under "serve.". Rolling migrations additionally mark a
  /// per-model "cutover" instant at each dispatch_ready_ stamp, and the
  /// arbiter's share virtual time is exported as a per-model gauge — the
  /// share-starvation signal on the timeline. Recording never perturbs the
  /// schedule.
  void set_observability(obs::Observability obs);

  /// Attaches a fault injector (src/fault/) shared across the co-located
  /// set: a kill evicts the dead device slot's in-flight slices of EVERY
  /// model and remaps each engine's VNs onto the survivors as a rolling
  /// migration (deepest-backlog model first, like perform_resize); see
  /// Server::set_fault_injector for the per-slice recovery semantics.
  /// Must be called before replay(); requires continuous mode; the
  /// injector must outlive the replay.
  void set_fault_injector(fault::FaultInjector* injector);

  /// Replays one open-loop arrival trace per model (indexed by model id,
  /// each ascending in arrival time) to completion, draining every queue.
  /// In continuous mode this is begin(traces); pump(+inf); finish().
  void replay(const std::vector<std::vector<InferRequest>>& traces);

  // ---- Cluster-governed stepping (the sched::DeviceLease protocol) ----
  //
  // A co-located deployment is ONE lease: the ClusterController sizes the
  // shared device set as a unit and the internal arbiter keeps splitting
  // it between the co-tenants. See Server for the per-method contracts;
  // the differences here are the combined load signal (sum of queues and
  // in-flight, worst relative deadline pressure picks the reported SLO)
  // and the rolling-migration grant (apply_grant returns the total
  // serialized migration charge; each model cuts over at its own stamp).

  /// Switches to cluster governance (before begin()): disables the shared
  /// internal elastic loop and enables apply_grant(). Requires continuous
  /// mode; validates the ElasticPolicy band regardless of `enabled`.
  void set_cluster_governed();

  /// Opens the per-model traces for externally-pumped stepping
  /// (continuous mode only; validation matches replay(); one begin per
  /// server). The traces must outlive the stepping run.
  void begin(const std::vector<std::vector<InferRequest>>& traces);

  void pump(double horizon_s) override;
  double next_event_s() const override;
  sched::LoadSignal load() const override;
  /// Resizes the shared set to `devices` through perform_resize (rolling
  /// migration). Returns the total serialized migration seconds.
  double apply_grant(std::int64_t devices) override;
  bool drained() const override;

  /// Exports the per-model SLO summaries + devices gauge to the attached
  /// metrics registry (idempotent). replay() calls it at the drain.
  void finish();

  double now_s() const { return clock_; }
  /// Models frozen at construction (a registry that grows afterwards is
  /// rejected at replay; these accessors never index past the snapshot).
  std::int64_t num_models() const { return static_cast<std::int64_t>(models_.size()); }
  /// Devices currently backing the shared set (all engines agree).
  std::int64_t shared_devices() const;

  const SloTracker& slo(std::int32_t m) const;
  const RequestQueue& queue(std::int32_t m) const;
  const std::vector<ResizeEvent>& resizes() const { return resizes_; }
  /// Work units across all models; BatchEvent::model carries the id.
  const std::vector<BatchEvent>& batches() const { return batches_; }
  /// Injected faults the replay acted on (shared-set events; a kill's
  /// eviction/requeue counts aggregate over all models).
  const std::vector<FaultRecord>& faults() const { return faults_; }
  /// Raw device-seconds model m's dispatches consumed (continuous mode).
  /// bench_streaming's share gate checks the ratio of these against the
  /// configured ModelConfig::share weights.
  double device_time_used(std::int32_t m) const;

 private:
  /// Mutable per-model serving state (config lives in the registry).
  struct ModelState {
    ModelState(VirtualFlowEngine& engine, const Dataset& pool,
               const ModelConfig& mc)
        : queue(mc.queue_capacity),
          former(mc.batch),
          tracker(mc.deadline_s),
          ledger(engine.mapping().total_vns()),
          dispatcher(engine, pool),
          streamer(engine.mapping().total_vns(), pool.size()),
          pending_chain(static_cast<std::size_t>(engine.mapping().total_vns()), 0) {}
    RequestQueue queue;
    BatchFormer former;
    SloTracker tracker;
    SlotLedger ledger;
    SliceDispatcher dispatcher;
    TokenStreamer streamer;
    /// VNs whose stream slice finished and wants another token; the slots
    /// stay busy (holding the finished slice) until the decode
    /// continuation is readmitted — possibly deferred past a rolling
    /// migration's cutover stamp for this model.
    std::vector<std::int32_t> continuations;
    /// pending_chain[vn] != 0 while vn sits in `continuations`: guards the
    /// completion scan from absorbing the same finished slice twice when a
    /// cutover defers the readmit across event-loop iterations.
    std::vector<char> pending_chain;
    std::size_t next_arrival = 0;
  };

  void replay_batch_boundary();

  // Continuous-mode transitions (one pump iteration = admit, complete,
  // faults, elastic decision, dispatch phases; see pump()).
  void finalize_span_depth();
  void complete_due();
  void readmit_continuations();
  void try_dispatch();
  void try_resumes();
  void process_faults_due();
  double next_event_internal() const;

  /// Admits every model's arrivals up to the clock, in model-id order.
  /// Re-activation snaps an idle model's share debt up to the system
  /// virtual time (idling banks no credit).
  void admit_up_to_clock();
  /// Charges `compute_s` device-seconds of model `m` to the share ledger.
  void charge(std::int32_t m, double compute_s);
  /// Length of model m's dispatchable classify prefix: queued requests up
  /// to `cap`, stopping at the first stream (FIFO order never lets a
  /// classify slice jump over a queued stream).
  std::int64_t classify_prefix(const ModelState& st, std::int64_t cap) const;
  /// Combined resize decision + lockstep execution (both modes).
  void resize_if_needed(std::int64_t combined_inflight);
  /// Executes a decided resize as a rolling migration: engines cut over
  /// to `target` devices serially (deepest combined backlog first, model
  /// id tie-break); model m's dispatches resume at dispatch_ready_[m].
  void perform_resize(std::int64_t target, std::int64_t depth);
  /// True while a rolling migration is still cutting models over.
  bool migration_in_progress() const;
  /// Dispatches one slice of model `m` onto its lowest free VN slot: a
  /// prefill when a stream heads the queue, a classify slice otherwise.
  void dispatch_slice(std::int32_t m);
  /// Applies a pending one-shot comm fault to a freshly dispatched slot
  /// (logits-return retry: done_s slips by one comm charge); identity
  /// when no injector or no fault is pending.
  Slot maybe_comm_fault(Slot slot);
  /// Executes one formed batch of model `m` on the full device set.
  void execute_model_batch(std::int32_t m, std::int64_t take);

  ModelRegistry& registry_;
  ColocationConfig config_;
  std::vector<ModelState> models_;
  /// The traces being replayed; set for the duration of replay() only.
  const std::vector<std::vector<InferRequest>>* traces_ = nullptr;

  double clock_ = 0.0;
  /// Per-device busy horizon on the shared set; devices serialize slices
  /// of ALL models (continuous mode). Rebuilt after every resize.
  std::vector<double> device_free_;
  /// Rolling-migration cutover stamps: model m dispatches nothing new
  /// before dispatch_ready_[m] (admissions and in-flight completions
  /// continue throughout).
  std::vector<double> dispatch_ready_;

  // Share ledger (continuous mode). share_weight_ is each model's
  // normalized share fraction; share_time_ its cumulative device time
  // divided by that fraction — the "debt" the arbiter adds to the
  // deadline key; device_seconds_ the raw consumption for read-out;
  // global_vtime_ the high-water debt used to re-sync re-activating
  // models.
  std::vector<double> share_weight_;
  std::vector<double> share_time_;
  std::vector<double> device_seconds_;
  double global_vtime_ = 0.0;

  std::int64_t work_since_resize_ = 0;
  bool replayed_ = false;
  bool cluster_governed_ = false;
  bool finished_ = false;
  std::vector<ResizeEvent> resizes_;
  std::vector<BatchEvent> batches_;

  /// Fault injector (null = no faults); see set_fault_injector.
  fault::FaultInjector* injector_ = nullptr;
  std::vector<FaultRecord> faults_;

  /// Observability sinks (null = off); see set_observability.
  obs::Observability obs_;
  /// Cached per-model share-virtual-time gauges (empty = off), updated on
  /// every charge() so share starvation is visible over virtual time.
  std::vector<obs::Gauge*> share_gauges_;
};

}  // namespace vf::serve
