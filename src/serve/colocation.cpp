#include "serve/colocation.h"

#include <algorithm>
#include <limits>
#include <tuple>

#include "sched/elastic.h"
#include "util/common.h"

namespace vf::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// ---- ModelRegistry ---------------------------------------------------------

std::int32_t ModelRegistry::add(VirtualFlowEngine& engine, const Dataset& request_pool,
                                ModelConfig config) {
  for (const Entry& e : entries_)
    check(e.engine != &engine,
          "an engine registers at most once (its virtual nodes are one "
          "model's identity)");
  check(config.queue_capacity > 0, "model queue capacity must be positive");
  check(config.deadline_s > 0.0, "model deadline must be positive");
  Entry e;
  e.engine = &engine;
  e.pool = &request_pool;
  e.config = std::move(config);
  entries_.push_back(std::move(e));
  return static_cast<std::int32_t>(entries_.size() - 1);
}

VirtualFlowEngine& ModelRegistry::engine(std::int32_t m) const {
  check_index(m, size(), "model");
  return *entries_[static_cast<std::size_t>(m)].engine;
}

const Dataset& ModelRegistry::pool(std::int32_t m) const {
  check_index(m, size(), "model");
  return *entries_[static_cast<std::size_t>(m)].pool;
}

const ModelConfig& ModelRegistry::config(std::int32_t m) const {
  check_index(m, size(), "model");
  return entries_[static_cast<std::size_t>(m)].config;
}

// ---- ColocatedServer -------------------------------------------------------

ColocatedServer::ColocatedServer(ModelRegistry& registry, ColocationConfig config)
    : registry_(registry), config_(std::move(config)) {
  check(registry_.size() >= 1, "co-location needs at least one registered model");

  const auto shared = static_cast<std::int64_t>(registry_.engine(0).devices().size());
  for (std::int32_t m = 0; m < registry_.size(); ++m) {
    check(static_cast<std::int64_t>(registry_.engine(m).devices().size()) == shared,
          "co-located engines must start on identical device counts (model " +
              std::to_string(m) + " differs); they share one device set");
  }

  if (config_.elastic.enabled) {
    const ElasticPolicy& e = config_.elastic;
    check(e.min_devices >= 1, "elastic min_devices must be >= 1");
    check(e.max_devices >= e.min_devices, "elastic max_devices < min_devices");
    check(e.high_watermark > e.low_watermark,
          "elastic watermarks must satisfy high > low (hysteresis)");
    check(e.cooldown_batches >= 0, "elastic cooldown must be non-negative");
    for (std::int32_t m = 0; m < registry_.size(); ++m) {
      check(e.max_devices <= registry_.engine(m).mapping().total_vns(),
            "elastic max_devices (" + std::to_string(e.max_devices) +
                ") exceeds model " + std::to_string(m) + "'s virtual-node count (" +
                std::to_string(registry_.engine(m).mapping().total_vns()) +
                "); devices beyond the VN count would idle for it");
    }
  }

  models_.reserve(static_cast<std::size_t>(registry_.size()));
  for (std::int32_t m = 0; m < registry_.size(); ++m) {
    const ModelConfig& mc = registry_.config(m);
    models_.emplace_back(mc.queue_capacity, mc.batch, mc.deadline_s,
                         registry_.engine(m).mapping().total_vns());
  }
  dispatch_ready_.assign(models_.size(), 0.0);
  // Drop accounting lives at each model's backpressure point, exactly as
  // in the single-model server. models_ never resizes after this loop, so
  // indexing through `this` stays valid.
  for (std::int32_t m = 0; m < registry_.size(); ++m) {
    models_[static_cast<std::size_t>(m)].queue.set_reject_observer(
        [this, m](const InferRequest& r) {
          models_[static_cast<std::size_t>(m)].tracker.record_rejection(r, r.arrival_s);
        });
  }
}

std::int64_t ColocatedServer::shared_devices() const {
  return static_cast<std::int64_t>(registry_.engine(0).devices().size());
}

const SloTracker& ColocatedServer::slo(std::int32_t m) const {
  // Bounds come from models_, the state frozen at construction — the
  // registry object could have grown since (see the replay() check).
  check_index(m, static_cast<std::int64_t>(models_.size()), "model");
  return models_[static_cast<std::size_t>(m)].tracker;
}

const RequestQueue& ColocatedServer::queue(std::int32_t m) const {
  check_index(m, static_cast<std::int64_t>(models_.size()), "model");
  return models_[static_cast<std::size_t>(m)].queue;
}

void ColocatedServer::replay(const std::vector<std::vector<InferRequest>>& traces) {
  check(!replayed_, "a ColocatedServer replays exactly one trace set");
  replayed_ = true;
  check(registry_.size() == static_cast<std::int64_t>(models_.size()),
        "the registry grew after this server was built (it serves the " +
            std::to_string(models_.size()) + " models registered at construction)");
  check(traces.size() == models_.size(),
        "one trace per registered model (got " + std::to_string(traces.size()) +
            ", registry holds " + std::to_string(models_.size()) + ")");
  for (const auto& trace : traces) {
    for (std::size_t i = 1; i < trace.size(); ++i)
      check(trace[i - 1].arrival_s <= trace[i].arrival_s,
            "each trace must be sorted by arrival time");
  }
  traces_ = &traces;
  if (config_.continuous) {
    replay_continuous();
  } else {
    replay_batch_boundary();
  }
  traces_ = nullptr;
}

void ColocatedServer::admit_up_to_clock() {
  for (std::size_t m = 0; m < models_.size(); ++m) {
    ModelState& st = models_[m];
    const auto& trace = (*traces_)[m];
    while (st.next_arrival < trace.size() &&
           trace[st.next_arrival].arrival_s <= clock_) {
      st.queue.push(trace[st.next_arrival]);
      ++st.next_arrival;
    }
  }
}

bool ColocatedServer::migration_in_progress() const {
  for (const double ready : dispatch_ready_)
    if (ready > clock_) return true;
  return false;
}

void ColocatedServer::resize_if_needed(std::int64_t combined_inflight) {
  const ElasticPolicy& e = config_.elastic;
  if (!e.enabled) return;
  if (work_since_resize_ < e.cooldown_batches) return;
  // A rolling migration is atomic: no new decision until the last model
  // has cut over to the current target.
  if (migration_in_progress()) return;
  // The shared budget reacts to the COMBINED system load: the sum of every
  // model's backlog (growth), plus every model's in-flight requests
  // (shrink) — one bursting model is enough to grow the set all models
  // run on, which is the whole point of co-locating.
  std::int64_t depth = 0;
  for (const ModelState& st : models_) depth += st.queue.size();
  const std::int64_t cur = shared_devices();
  const std::int64_t target = sched::elastic_resize_target(
      depth, combined_inflight, cur, e.high_watermark, e.low_watermark,
      e.min_devices, e.max_devices);
  if (target == cur) return;
  perform_resize(target, depth);
  device_free_.assign(static_cast<std::size_t>(shared_devices()), clock_);
}

void ColocatedServer::perform_resize(std::int64_t target, std::int64_t depth) {
  const std::int64_t cur = shared_devices();

  // Rolling migration order: deepest backlog first (it is the model the
  // resize exists for), model id breaking ties — a pure function of
  // replay state, so the cutover sequence is part of the determinism
  // contract.
  std::vector<std::int32_t> order(models_.size());
  for (std::size_t m = 0; m < models_.size(); ++m)
    order[m] = static_cast<std::int32_t>(m);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    const std::int64_t qa = models_[static_cast<std::size_t>(a)].queue.size();
    const std::int64_t qb = models_[static_cast<std::size_t>(b)].queue.size();
    if (qa != qb) return qa > qb;
    return a < b;
  });

  // The state all-gathers share the links, so the charges serialize; but
  // each model's NEW dispatches resume the moment ITS state has landed —
  // the urgent (deepest-backlog) model pays only the price a dedicated
  // server would have charged it. The mapping itself switches now;
  // in-flight slices keep their old schedules (seamless).
  double migration = 0.0;
  for (const std::int32_t m : order) {
    VirtualFlowEngine& eng = registry_.engine(m);
    const double before = eng.sim_time_s();
    eng.resize(make_devices(config_.elastic.device, target));
    migration += eng.sim_time_s() - before;
    dispatch_ready_[static_cast<std::size_t>(m)] = clock_ + migration;
  }

  ResizeEvent ev;
  ev.time_s = clock_ + migration;  // shared set fully live
  ev.from_devices = cur;
  ev.to_devices = target;
  ev.queue_depth = depth;
  ev.migration_s = migration;
  resizes_.push_back(ev);
  work_since_resize_ = 0;
}

void ColocatedServer::dispatch_slice(std::int32_t m) {
  ModelState& st = models_[static_cast<std::size_t>(m)];
  VirtualFlowEngine& eng = registry_.engine(m);
  const std::int32_t vn = st.ledger.lowest_free();
  const std::int64_t cap = eng.mapping().vn_batch(vn);

  Slot slot;
  slot.requests = st.queue.pop(std::min(cap, st.queue.size()));
  idx_scratch_.clear();
  idx_scratch_.reserve(slot.requests.size());
  for (const InferRequest& r : slot.requests) idx_scratch_.push_back(r.example_index);
  slices_scratch_.resize(1);
  InferSlice& slice = slices_scratch_.front();
  slice.vn = vn;
  registry_.pool(m).gather(idx_scratch_, slice.features, labels_scratch_);
  InferStats stats = eng.infer(slices_scratch_);
  const SliceCost& cost = stats.slice_costs.front();

  // The warm/cold pricing rule is the single-model server's
  // (price_slice_dispatch — one definition, no drift), but the device
  // horizon is SHARED: a slice of model A pipelines warm behind a pass of
  // model B on the same device — co-scheduled slices amortize the
  // dispatch overhead no matter whose they are.
  const auto dev = static_cast<std::size_t>(cost.device);
  const SliceSchedule sched = price_slice_dispatch(clock_, device_free_[dev], cost);
  slot.dispatch_s = clock_;
  slot.devices = shared_devices();
  slot.compute_s = sched.compute_s;
  slot.comm_s = cost.comm_s;
  slot.done_s = sched.done_s;
  device_free_[dev] = sched.start_s + sched.compute_s;
  slot.predictions = std::move(stats.predictions);
  st.ledger.admit(vn, std::move(slot));
}

void ColocatedServer::replay_continuous() {
  device_free_.assign(static_cast<std::size_t>(shared_devices()), 0.0);

  // Completion transition: across ALL models, free every slot due at the
  // current clock in (done_s, model id, VN id) order — the canonical
  // multi-model completion order.
  const auto complete_due = [&]() {
    std::vector<std::tuple<double, std::int32_t, std::int32_t>> due;
    for (std::size_t m = 0; m < models_.size(); ++m) {
      ModelState& st = models_[m];
      for (const std::int32_t vn : st.ledger.due(clock_))
        due.emplace_back(st.ledger.slot(vn).done_s, static_cast<std::int32_t>(m), vn);
    }
    std::sort(due.begin(), due.end());
    for (const auto& [done_s, m, vn] : due) {
      ModelState& st = models_[static_cast<std::size_t>(m)];
      const Slot done = st.ledger.complete(vn);
      for (std::size_t i = 0; i < done.requests.size(); ++i) {
        const InferRequest& r = done.requests[i];
        RequestRecord rec;
        rec.id = r.id;
        rec.arrival_s = r.arrival_s;
        rec.dispatch_s = done.dispatch_s;
        rec.queue_wait_s = done.dispatch_s - r.arrival_s;
        rec.compute_s = done.compute_s;
        rec.comm_s = done.comm_s;
        rec.finish_s = done.done_s;
        rec.prediction = done.predictions[i];
        st.tracker.record_completion(std::move(rec));
      }
      ++work_since_resize_;
      BatchEvent ev;
      ev.start_s = done.dispatch_s;
      ev.finish_s = done.done_s;
      ev.size = static_cast<std::int64_t>(done.requests.size());
      ev.devices = done.devices;  // the mapping it was launched under
      ev.queue_depth_after = st.queue.size();
      ev.vn = vn;
      ev.model = m;
      batches_.push_back(ev);
    }
  };

  // The deadline-aware arbiter: while any model has a dispatchable slice
  // (free slot + full slice or timed-out oldest request), claim slots in
  // ascending (earliest deadline, model id, VN id) order. The VN-id part
  // comes free: within a model, lowest_free() claims ascending VN ids.
  const auto try_dispatch = [&]() {
    for (;;) {
      std::int32_t best = -1;
      double best_key = kInf;
      for (std::size_t m = 0; m < models_.size(); ++m) {
        ModelState& st = models_[m];
        if (clock_ < dispatch_ready_[m]) continue;  // still cutting over
        if (st.queue.empty()) continue;
        const std::int32_t vn = st.ledger.lowest_free();
        if (vn < 0) continue;
        const ModelConfig& mc = registry_.config(static_cast<std::int32_t>(m));
        const std::int64_t cap =
            registry_.engine(static_cast<std::int32_t>(m)).mapping().vn_batch(vn);
        const bool full_slice = st.queue.size() >= cap;
        const bool timed_out =
            clock_ >= st.queue.front().arrival_s + mc.batch.max_wait_s;
        if (!full_slice && !timed_out) continue;
        // Strict < keeps the lowest model id on deadline ties (scan order).
        const double key = st.queue.front().arrival_s + mc.deadline_s;
        if (key < best_key) {
          best_key = key;
          best = static_cast<std::int32_t>(m);
        }
      }
      if (best < 0) break;
      dispatch_slice(best);
    }
  };

  while (true) {
    admit_up_to_clock();
    complete_due();
    std::int64_t inflight = 0;
    for (const ModelState& st : models_) inflight += st.ledger.inflight_requests();
    resize_if_needed(inflight);
    try_dispatch();

    // Next event over all models: earliest in-flight completion, next
    // arrival, or — where a partial slice waits on a free slot — the
    // oldest request's timeout.
    double next_t = kInf;
    for (std::size_t m = 0; m < models_.size(); ++m) {
      const ModelState& st = models_[m];
      next_t = std::min(next_t, st.ledger.earliest_done_s());
      const auto& trace = (*traces_)[m];
      if (st.next_arrival < trace.size())
        next_t = std::min(next_t, trace[st.next_arrival].arrival_s);
      if (!st.queue.empty() && st.ledger.lowest_free() >= 0) {
        // A full slice blocked only by a cutover dispatches at the ready
        // stamp; a partial slice waits for its timeout (or the cutover,
        // whichever is later).
        const std::int64_t cap = registry_.engine(static_cast<std::int32_t>(m))
                                     .mapping()
                                     .vn_batch(st.ledger.lowest_free());
        const double timeout =
            st.queue.front().arrival_s +
            registry_.config(static_cast<std::int32_t>(m)).batch.max_wait_s;
        const double t = st.queue.size() >= cap
                             ? dispatch_ready_[m]
                             : std::max(timeout, dispatch_ready_[m]);
        next_t = std::min(next_t, t);
      }
    }
    if (next_t == kInf) break;  // ledgers idle, queues drained, traces done
    clock_ = std::max(clock_, next_t);
  }
}

void ColocatedServer::execute_model_batch(std::int32_t m, std::int64_t take) {
  ModelState& st = models_[static_cast<std::size_t>(m)];
  VirtualFlowEngine& eng = registry_.engine(m);
  const double start = clock_;
  const std::vector<InferRequest> batch = st.queue.pop(take);
  const std::vector<VnPack> packs = st.former.pack(take, eng.mapping());

  slices_scratch_.resize(packs.size());
  for (std::size_t pi = 0; pi < packs.size(); ++pi) {
    const VnPack& p = packs[pi];
    idx_scratch_.clear();
    idx_scratch_.reserve(p.positions.size());
    for (const std::int64_t pos : p.positions)
      idx_scratch_.push_back(batch[static_cast<std::size_t>(pos)].example_index);
    InferSlice& s = slices_scratch_[pi];
    s.vn = p.vn;
    registry_.pool(m).gather(idx_scratch_, s.features, labels_scratch_);
  }

  const InferStats stats = eng.infer(slices_scratch_);
  const double finish = start + stats.compute_s + stats.comm_s;

  for (std::int64_t p = 0; p < take; ++p) {
    const InferRequest& r = batch[static_cast<std::size_t>(p)];
    RequestRecord rec;
    rec.id = r.id;
    rec.arrival_s = r.arrival_s;
    rec.dispatch_s = start;
    rec.queue_wait_s = start - r.arrival_s;
    rec.compute_s = stats.compute_s;
    rec.comm_s = stats.comm_s;
    rec.finish_s = finish;
    rec.prediction = stats.predictions[static_cast<std::size_t>(p)];
    st.tracker.record_completion(std::move(rec));
  }

  clock_ = finish;
  ++work_since_resize_;
  BatchEvent ev;
  ev.start_s = start;
  ev.finish_s = finish;
  ev.size = take;
  ev.devices = shared_devices();
  ev.queue_depth_after = st.queue.size();
  ev.model = m;
  batches_.push_back(ev);
}

void ColocatedServer::replay_batch_boundary() {
  while (true) {
    admit_up_to_clock();

    // Deadline-ordered batch arbitration: among models whose former says
    // a batch is ready, serve the one whose oldest request's deadline is
    // earliest (model id breaks ties); each batch runs on the FULL shared
    // device set, so batches of different models serialize.
    std::int32_t best = -1;
    double best_key = kInf;
    std::int64_t best_take = 0;
    for (std::size_t m = 0; m < models_.size(); ++m) {
      ModelState& st = models_[m];
      if (clock_ < dispatch_ready_[m]) continue;  // still cutting over
      const std::int64_t ready = st.former.ready_count(st.queue, clock_);
      if (ready == 0) continue;
      const ModelConfig& mc = registry_.config(static_cast<std::int32_t>(m));
      const double key = st.queue.front().arrival_s + mc.deadline_s;
      if (key < best_key) {
        best_key = key;
        best = static_cast<std::int32_t>(m);
        best_take = std::min(
            ready,
            registry_.engine(static_cast<std::int32_t>(m)).mapping().global_batch());
      }
    }

    if (best >= 0) {
      execute_model_batch(best, best_take);
      // Admit the service window's arrivals before recording depth and
      // deciding elasticity, exactly like the single-model server.
      admit_up_to_clock();
      batches_.back().queue_depth_after =
          models_[static_cast<std::size_t>(best)].queue.size();
      resize_if_needed(/*combined_inflight=*/0);
      continue;
    }

    // Nothing ready: jump to the next event — a queued model's timeout
    // (no earlier than its cutover stamp) or the next arrival of any
    // model.
    double next_t = kInf;
    for (std::size_t m = 0; m < models_.size(); ++m) {
      const ModelState& st = models_[m];
      if (!st.queue.empty()) {
        const double formable =
            st.former.ready_count(st.queue, clock_) > 0
                ? dispatch_ready_[m]  // gated batch fires at cutover
                : std::max(st.former.timeout_deadline_s(st.queue),
                           dispatch_ready_[m]);
        next_t = std::min(next_t, formable);
      }
      const auto& trace = (*traces_)[m];
      if (st.next_arrival < trace.size())
        next_t = std::min(next_t, trace[st.next_arrival].arrival_s);
    }
    if (next_t == kInf) break;  // queues drained, traces exhausted
    clock_ = std::max(clock_, next_t);
  }
}

}  // namespace vf::serve
