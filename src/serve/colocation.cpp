#include "serve/colocation.h"

#include <algorithm>
#include <limits>
#include <tuple>
#include <utility>

#include "sched/elastic.h"
#include "util/common.h"

namespace vf::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// ---- ModelRegistry ---------------------------------------------------------

std::int32_t ModelRegistry::add(VirtualFlowEngine& engine, const Dataset& request_pool,
                                ModelConfig config) {
  for (const Entry& e : entries_)
    check(e.engine != &engine,
          "an engine registers at most once (its virtual nodes are one "
          "model's identity)");
  check(config.queue_capacity > 0, "model queue capacity must be positive");
  check(config.deadline_s > 0.0, "model deadline must be positive");
  check(config.share > 0.0, "model share weight must be positive");
  Entry e;
  e.engine = &engine;
  e.pool = &request_pool;
  e.config = std::move(config);
  entries_.push_back(std::move(e));
  return static_cast<std::int32_t>(entries_.size() - 1);
}

VirtualFlowEngine& ModelRegistry::engine(std::int32_t m) const {
  check_index(m, size(), "model");
  return *entries_[static_cast<std::size_t>(m)].engine;
}

const Dataset& ModelRegistry::pool(std::int32_t m) const {
  check_index(m, size(), "model");
  return *entries_[static_cast<std::size_t>(m)].pool;
}

const ModelConfig& ModelRegistry::config(std::int32_t m) const {
  check_index(m, size(), "model");
  return entries_[static_cast<std::size_t>(m)].config;
}

// ---- ColocatedServer -------------------------------------------------------

ColocatedServer::ColocatedServer(ModelRegistry& registry, ColocationConfig config)
    : registry_(registry), config_(std::move(config)) {
  check(registry_.size() >= 1, "co-location needs at least one registered model");

  const auto shared = static_cast<std::int64_t>(registry_.engine(0).devices().size());
  for (std::int32_t m = 0; m < registry_.size(); ++m) {
    check(static_cast<std::int64_t>(registry_.engine(m).devices().size()) == shared,
          "co-located engines must start on identical device counts (model " +
              std::to_string(m) + " differs); they share one device set");
  }

  if (config_.elastic.enabled) {
    const ElasticPolicy& e = config_.elastic;
    check(e.min_devices >= 1, "elastic min_devices must be >= 1");
    check(e.max_devices >= e.min_devices, "elastic max_devices < min_devices");
    check(e.high_watermark > e.low_watermark,
          "elastic watermarks must satisfy high > low (hysteresis)");
    check(e.cooldown_batches >= 0, "elastic cooldown must be non-negative");
    for (std::int32_t m = 0; m < registry_.size(); ++m) {
      check(e.max_devices <= registry_.engine(m).mapping().total_vns(),
            "elastic max_devices (" + std::to_string(e.max_devices) +
                ") exceeds model " + std::to_string(m) + "'s virtual-node count (" +
                std::to_string(registry_.engine(m).mapping().total_vns()) +
                "); devices beyond the VN count would idle for it");
    }
  }

  models_.reserve(static_cast<std::size_t>(registry_.size()));
  double total_share = 0.0;
  for (std::int32_t m = 0; m < registry_.size(); ++m) {
    const ModelConfig& mc = registry_.config(m);
    models_.emplace_back(registry_.engine(m), registry_.pool(m), mc);
    total_share += mc.share;
  }
  dispatch_ready_.assign(models_.size(), 0.0);
  share_weight_.resize(models_.size());
  for (std::int32_t m = 0; m < registry_.size(); ++m)
    share_weight_[static_cast<std::size_t>(m)] =
        registry_.config(m).share / total_share;
  share_time_.assign(models_.size(), 0.0);
  device_seconds_.assign(models_.size(), 0.0);

  // Drop accounting lives at each model's backpressure point, exactly as
  // in the single-model server. models_ never resizes after this loop, so
  // indexing through `this` stays valid.
  for (std::int32_t m = 0; m < registry_.size(); ++m) {
    models_[static_cast<std::size_t>(m)].queue.set_reject_observer(
        [this, m](const InferRequest& r, double now_s) {
          models_[static_cast<std::size_t>(m)].tracker.record_rejection(r, now_s);
          if (obs_.trace != nullptr)
            obs_.trace->instant("reject", now_s, /*device=*/-1, /*vn=*/-1,
                                m, /*arg0=*/r.id);
        });
    if (registry_.config(m).shed_expired)
      models_[static_cast<std::size_t>(m)].queue.set_deadline(
          registry_.config(m).deadline_s);
  }
}

void ColocatedServer::set_observability(obs::Observability obs) {
  check(!replayed_, "attach observability before replay()");
  obs_ = obs;
  share_gauges_.clear();
  for (std::int32_t m = 0; m < static_cast<std::int32_t>(models_.size()); ++m) {
    ModelState& st = models_[static_cast<std::size_t>(m)];
    const std::string prefix = "serve." + registry_.config(m).name + ".";
    st.dispatcher.set_observability(obs, m, prefix);
    st.tracker.set_metrics(obs.metrics, prefix);
    st.ledger.set_metrics(obs.metrics, prefix);
    if (obs.metrics != nullptr)
      share_gauges_.push_back(&obs.metrics->gauge(prefix + "share_vtime"));
  }
}

void ColocatedServer::set_fault_injector(fault::FaultInjector* injector) {
  check(!replayed_, "attach the fault injector before replay()");
  check(injector == nullptr || config_.continuous,
        "fault injection requires continuous batching (recovery re-dispatches "
        "at slice granularity)");
  injector_ = injector;
}

std::int64_t ColocatedServer::shared_devices() const {
  return static_cast<std::int64_t>(registry_.engine(0).devices().size());
}

const SloTracker& ColocatedServer::slo(std::int32_t m) const {
  // Bounds come from models_, the state frozen at construction — the
  // registry object could have grown since (see the replay() check).
  check_index(m, static_cast<std::int64_t>(models_.size()), "model");
  return models_[static_cast<std::size_t>(m)].tracker;
}

const RequestQueue& ColocatedServer::queue(std::int32_t m) const {
  check_index(m, static_cast<std::int64_t>(models_.size()), "model");
  return models_[static_cast<std::size_t>(m)].queue;
}

double ColocatedServer::device_time_used(std::int32_t m) const {
  check_index(m, static_cast<std::int64_t>(models_.size()), "model");
  return device_seconds_[static_cast<std::size_t>(m)];
}

void ColocatedServer::replay(const std::vector<std::vector<InferRequest>>& traces) {
  if (config_.continuous) {
    begin(traces);
    pump(kInf);
    finish();
    traces_ = nullptr;
    return;
  }
  check(!replayed_, "a ColocatedServer replays exactly one trace set");
  replayed_ = true;
  check(registry_.size() == static_cast<std::int64_t>(models_.size()),
        "the registry grew after this server was built (it serves the " +
            std::to_string(models_.size()) + " models registered at construction)");
  check(traces.size() == models_.size(),
        "one trace per registered model (got " + std::to_string(traces.size()) +
            ", registry holds " + std::to_string(models_.size()) + ")");
  for (const auto& trace : traces) {
    for (std::size_t i = 1; i < trace.size(); ++i)
      check(trace[i - 1].arrival_s <= trace[i].arrival_s,
            "each trace must be sorted by arrival time");
    for (const InferRequest& r : trace)
      check(!TokenStreamer::is_stream(r),
            "token streams require continuous batching "
            "(ColocationConfig::continuous)");
  }
  traces_ = &traces;
  replay_batch_boundary();
  traces_ = nullptr;
  finish();
}

void ColocatedServer::set_cluster_governed() {
  check(!replayed_, "switch to cluster governance before replay()/begin()");
  check(config_.continuous,
        "cluster governance requires continuous batching — grants reuse "
        "the rolling slice-level migration path");
  // The ElasticPolicy band parameterizes the load() signal even when the
  // internal loop is off, so it must be coherent regardless of `enabled`.
  const ElasticPolicy& e = config_.elastic;
  check(e.min_devices >= 1, "elastic min_devices must be >= 1");
  check(e.max_devices >= e.min_devices, "elastic max_devices < min_devices");
  check(e.high_watermark > e.low_watermark,
        "elastic watermarks must satisfy high > low (hysteresis)");
  for (std::int32_t m = 0; m < registry_.size(); ++m)
    check(e.max_devices <= registry_.engine(m).mapping().total_vns(),
          "elastic max_devices exceeds model " + std::to_string(m) +
              "'s virtual-node count");
  cluster_governed_ = true;
}

void ColocatedServer::begin(const std::vector<std::vector<InferRequest>>& traces) {
  check(!replayed_, "a ColocatedServer replays exactly one trace set");
  check(config_.continuous,
        "externally stepped serving requires continuous batching");
  replayed_ = true;
  check(registry_.size() == static_cast<std::int64_t>(models_.size()),
        "the registry grew after this server was built (it serves the " +
            std::to_string(models_.size()) + " models registered at construction)");
  check(traces.size() == models_.size(),
        "one trace per registered model (got " + std::to_string(traces.size()) +
            ", registry holds " + std::to_string(models_.size()) + ")");
  for (const auto& trace : traces)
    for (std::size_t i = 1; i < trace.size(); ++i)
      check(trace[i - 1].arrival_s <= trace[i].arrival_s,
            "each trace must be sorted by arrival time");
  traces_ = &traces;
  device_free_.assign(static_cast<std::size_t>(shared_devices()), 0.0);
}

void ColocatedServer::finish() {
  if (finished_) return;
  finished_ = true;
  if (obs_.metrics != nullptr) {
    for (std::int32_t m = 0; m < static_cast<std::int32_t>(models_.size()); ++m) {
      const ModelState& st = models_[static_cast<std::size_t>(m)];
      const std::string prefix = "serve." + registry_.config(m).name + ".";
      SloTracker::export_summary(st.tracker.summary(), *obs_.metrics, prefix,
                                 clock_);
      obs_.metrics->gauge(prefix + "device_seconds")
          .set(device_time_used(m), clock_);
    }
    obs_.metrics->gauge("serve.devices")
        .set(static_cast<double>(shared_devices()), clock_);
  }
}

double ColocatedServer::next_event_s() const {
  if (traces_ == nullptr) return kInf;
  return next_event_internal();
}

bool ColocatedServer::drained() const {
  if (traces_ == nullptr) return false;
  for (std::size_t m = 0; m < models_.size(); ++m) {
    const ModelState& st = models_[m];
    if (st.next_arrival != (*traces_)[m].size() || !st.queue.empty() ||
        !st.ledger.all_free() || st.streamer.has_paused() ||
        !st.continuations.empty())
      return false;
  }
  return true;
}

sched::LoadSignal ColocatedServer::load() const {
  check(traces_ != nullptr, "begin() traces before reading the load signal");
  const ElasticPolicy& e = config_.elastic;
  sched::LoadSignal s;
  // The co-located set is sized as one unit, so the signal is combined:
  // total backlog, total in-flight — and the SLO terms come from the
  // model under the worst RELATIVE deadline pressure (oldest wait divided
  // by its own deadline), which is the tenant a size decision must save.
  double worst_pressure = -1.0;
  for (std::size_t m = 0; m < models_.size(); ++m) {
    const ModelState& st = models_[m];
    s.queue_depth += st.queue.size();
    s.inflight += st.ledger.inflight_requests() + st.streamer.paused_streams();
    const double deadline =
        registry_.config(static_cast<std::int32_t>(m)).deadline_s;
    const double wait =
        st.queue.empty() ? 0.0
                         : std::max(0.0, clock_ - st.queue.front().enqueued_s());
    if (deadline > 0.0 && wait / deadline > worst_pressure) {
      worst_pressure = wait / deadline;
      s.oldest_wait_s = wait;
      s.deadline_s = deadline;
    }
  }
  s.devices = shared_devices();
  std::int64_t max_dev = e.max_devices;
  if (injector_ != nullptr)
    max_dev = std::max<std::int64_t>(
        1, std::min(max_dev, injector_->capacity_cap(e.max_devices)));
  s.max_devices = max_dev;
  s.min_devices = std::min(e.min_devices, max_dev);
  s.high_watermark = e.high_watermark;
  s.low_watermark = e.low_watermark;
  s.drained = drained();
  // A rolling migration is atomic: until the last model has cut over, the
  // set is not resizable, so the band collapses to the current size. The
  // cluster policy can then only re-grant the size we already are (a
  // no-op), never interleave a second migration schedule.
  if (migration_in_progress()) s.min_devices = s.max_devices = s.devices;
  return s;
}

double ColocatedServer::apply_grant(std::int64_t devices) {
  check(cluster_governed_,
        "apply_grant() requires cluster governance (set_cluster_governed)");
  check(traces_ != nullptr, "begin() traces before granting devices");
  const std::int64_t cur = shared_devices();
  if (devices == cur) return 0.0;
  check(devices >= 1, "a device grant must keep at least one device");
  for (std::int32_t m = 0; m < registry_.size(); ++m)
    check(devices <= registry_.engine(m).mapping().total_vns(),
          "device grant exceeds model " + std::to_string(m) +
              "'s virtual-node count");
  // A rolling migration is atomic; a grant mid-cutover would interleave
  // two migration schedules. load() collapses the [min, max] band to the
  // current size while cutting over, so a correct policy can only re-grant
  // the current size (the no-op early return above) until the last model
  // has cut over — reaching here mid-migration means a buggy policy.
  check(!migration_in_progress(),
        "device grant while a rolling migration is still cutting over");
  std::int64_t depth = 0;
  for (const ModelState& st : models_) depth += st.queue.size();
  perform_resize(devices, depth);
  device_free_.assign(static_cast<std::size_t>(shared_devices()), clock_);
  return resizes_.back().migration_s;
}

void ColocatedServer::charge(std::int32_t m, double compute_s) {
  const auto i = static_cast<std::size_t>(m);
  global_vtime_ = std::max(global_vtime_, share_time_[i]);
  share_time_[i] += compute_s / share_weight_[i];
  device_seconds_[i] += compute_s;
  // The arbiter key's share-debt term over virtual time: the gauge pair
  // (value, stamp) plots each model's weighted consumption, which is where
  // share starvation shows up first.
  if (!share_gauges_.empty()) share_gauges_[i]->set(share_time_[i], clock_);
}

std::int64_t ColocatedServer::classify_prefix(const ModelState& st,
                                              std::int64_t cap) const {
  std::int64_t prefix = 0;
  while (prefix < st.queue.size() && prefix < cap &&
         !TokenStreamer::is_stream(st.queue.at(prefix)))
    ++prefix;
  return prefix;
}

void ColocatedServer::admit_up_to_clock() {
  for (std::size_t m = 0; m < models_.size(); ++m) {
    ModelState& st = models_[m];
    const auto& trace = (*traces_)[m];
    const bool was_idle = st.queue.empty() && st.ledger.all_free() &&
                          !st.streamer.has_paused();
    bool admitted = false;
    const bool shed = registry_.config(static_cast<std::int32_t>(m)).shed_expired;
    while (st.next_arrival < trace.size() &&
           trace[st.next_arrival].arrival_s <= clock_) {
      // Shedding models stamp admission at the loop's clock so a request
      // already past its SLO is bounced, not queued to a guaranteed miss.
      if (shed)
        st.queue.push(trace[st.next_arrival], clock_);
      else
        st.queue.push(trace[st.next_arrival]);
      ++st.next_arrival;
      admitted = true;
    }
    // Re-activation: a fully idle model's share debt snaps up to the
    // system virtual time, so a model cannot bank device-time credit by
    // idling and then starve its co-tenants with a stale (low) debt.
    if (was_idle && admitted)
      share_time_[m] = std::max(share_time_[m], global_vtime_);
  }
}

bool ColocatedServer::migration_in_progress() const {
  for (const double ready : dispatch_ready_)
    if (ready > clock_) return true;
  return false;
}

void ColocatedServer::resize_if_needed(std::int64_t combined_inflight) {
  // Under cluster governance the ClusterController owns the size of the
  // shared set; the same signals flow to it through load().
  if (cluster_governed_) return;
  const ElasticPolicy& e = config_.elastic;
  if (!e.enabled) return;
  if (work_since_resize_ < e.cooldown_batches) return;
  // A rolling migration is atomic: no new decision until the last model
  // has cut over to the current target.
  if (migration_in_progress()) return;
  // The shared budget reacts to the COMBINED system load: the sum of every
  // model's backlog plus every model's in-flight requests, in both
  // directions — one bursting model is enough to grow the set all models
  // run on, which is the whole point of co-locating.
  std::int64_t depth = 0;
  for (const ModelState& st : models_) depth += st.queue.size();
  const std::int64_t cur = shared_devices();
  // Killed devices shrink the elastic budget until their recover events
  // lift the cap — growth cannot resurrect lost capacity.
  std::int64_t max_dev = e.max_devices;
  if (injector_ != nullptr)
    max_dev = std::max(e.min_devices,
                       std::min(max_dev, injector_->capacity_cap(e.max_devices)));
  const std::int64_t target = sched::elastic_resize_target(
      depth, combined_inflight, cur, e.high_watermark, e.low_watermark,
      e.min_devices, max_dev);
  if (target == cur) return;
  perform_resize(target, depth);
  device_free_.assign(static_cast<std::size_t>(shared_devices()), clock_);
}

void ColocatedServer::perform_resize(std::int64_t target, std::int64_t depth) {
  const std::int64_t cur = shared_devices();

  // Rolling migration order: deepest backlog first (it is the model the
  // resize exists for), model id breaking ties — a pure function of
  // replay state, so the cutover sequence is part of the determinism
  // contract.
  std::vector<std::int32_t> order(models_.size());
  for (std::size_t m = 0; m < models_.size(); ++m)
    order[m] = static_cast<std::int32_t>(m);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    const std::int64_t qa = models_[static_cast<std::size_t>(a)].queue.size();
    const std::int64_t qb = models_[static_cast<std::size_t>(b)].queue.size();
    if (qa != qb) return qa > qb;
    return a < b;
  });

  // The state all-gathers share the links, so the charges serialize; but
  // each model's NEW dispatches resume the moment ITS state has landed —
  // the urgent (deepest-backlog) model pays only the price a dedicated
  // server would have charged it. The mapping itself switches now;
  // in-flight slices keep their old schedules (seamless), and a deferred
  // decode chain resumes at its model's cutover stamp.
  double migration = 0.0;
  for (const std::int32_t m : order) {
    VirtualFlowEngine& eng = registry_.engine(m);
    const double before = eng.sim_time_s();
    eng.resize(make_devices(config_.elastic.device, target));
    migration += eng.sim_time_s() - before;
    dispatch_ready_[static_cast<std::size_t>(m)] = clock_ + migration;
    // Rolling migration: one "cutover" marker per model at its
    // dispatch-resume stamp, in cutover (deepest-backlog-first) order.
    if (obs_.trace != nullptr)
      obs_.trace->instant("cutover", clock_ + migration, /*device=*/-1,
                          /*vn=*/-1, m);
  }

  ResizeEvent ev;
  ev.time_s = clock_ + migration;  // shared set fully live
  ev.from_devices = cur;
  ev.to_devices = target;
  ev.queue_depth = depth;
  ev.migration_s = migration;
  resizes_.push_back(ev);
  work_since_resize_ = 0;

  if (obs_.trace != nullptr)
    obs_.trace->instant("resize", clock_, /*device=*/-1, /*vn=*/-1,
                        /*model=*/-1, /*arg0=*/cur, /*arg1=*/target,
                        /*arg_s=*/migration);
  if (obs_.metrics != nullptr) {
    obs_.metrics->counter(target > cur ? "serve.resizes.grow"
                                       : "serve.resizes.shrink")
        .add();
    obs_.metrics->gauge("serve.devices").set(static_cast<double>(target), clock_);
  }
}

Slot ColocatedServer::maybe_comm_fault(Slot slot) {
  if (injector_ != nullptr && injector_->take_comm_fault()) {
    slot.done_s += slot.comm_s;
    slot.comm_s *= 2.0;
  }
  return slot;
}

void ColocatedServer::dispatch_slice(std::int32_t m) {
  ModelState& st = models_[static_cast<std::size_t>(m)];
  const std::int32_t vn = st.ledger.lowest_free();
  if (TokenStreamer::is_stream(st.queue.front())) {
    std::vector<InferRequest> one = st.queue.pop(1);
    Slot slot = maybe_comm_fault(st.streamer.prefill(
        st.dispatcher, vn, clock_, device_free_, std::move(one.front())));
    charge(m, slot.compute_s);
    st.ledger.admit(vn, std::move(slot));
    return;
  }
  const std::int64_t cap = registry_.engine(m).mapping().vn_batch(vn);
  const std::int64_t prefix = classify_prefix(st, cap);
  Slot slot = maybe_comm_fault(st.dispatcher.dispatch_classify(
      vn, clock_, device_free_, st.queue.pop(prefix)));
  charge(m, slot.compute_s);
  st.ledger.admit(vn, std::move(slot));
}

// Finalizes the newest slice event's trace span: post-admission queue
// depth (the dispatcher stamped the model already).
void ColocatedServer::finalize_span_depth() {
  if (obs_.trace != nullptr)
    obs_.trace->set_queue_depth(batches_.back().trace_span,
                                batches_.back().queue_depth_after);
}

// Completion transition: across ALL models, process every slot due at
// the current clock in (done_s, model id, VN id) order — the canonical
// multi-model completion order. Slots awaiting a deferred decode
// continuation (pending_chain) were already absorbed and are skipped.
void ColocatedServer::complete_due() {
  std::vector<std::tuple<double, std::int32_t, std::int32_t>> due;
  for (std::size_t m = 0; m < models_.size(); ++m) {
    ModelState& st = models_[m];
    for (const std::int32_t vn : st.ledger.due(clock_)) {
      if (st.pending_chain[static_cast<std::size_t>(vn)]) continue;
      due.emplace_back(st.ledger.slot(vn).done_s, static_cast<std::int32_t>(m), vn);
    }
  }
  std::sort(due.begin(), due.end());
  for (const auto& [done_s, m, vn] : due) {
    static_cast<void>(done_s);
    ModelState& st = models_[static_cast<std::size_t>(m)];
    if (st.ledger.slot(vn).kind == SliceKind::kClassify) {
      const Slot done = st.ledger.complete(vn);
      record_slice_requests(done, st.tracker);
      ++work_since_resize_;
      BatchEvent ev = make_slice_event(done, vn, st.queue.size());
      ev.model = m;
      batches_.push_back(ev);
      finalize_span_depth();
      continue;
    }
    // Stream slice: stamp one token off the finished slice, then chain,
    // retire, or yield the slot at this token boundary.
    const bool more = st.streamer.absorb(vn, st.ledger.slot(vn));
    ++work_since_resize_;
    BatchEvent ev = make_slice_event(st.ledger.slot(vn), vn, st.queue.size());
    ev.model = m;
    batches_.push_back(ev);
    finalize_span_depth();
    if (!more) {
      st.ledger.complete(vn);
      st.tracker.record_completion(st.streamer.finish(vn));
    } else if (config_.stream.disaggregate &&
               clock_ >= dispatch_ready_[static_cast<std::size_t>(m)] &&
               !st.streamer.has_paused() && st.ledger.lowest_free() < 0 &&
               !st.queue.empty() &&
               TokenStreamer::is_stream(st.queue.front())) {
      // Token-boundary preemption, per model: every slot of THIS model
      // is busy and a stream heads its queue — park the chain (at most
      // one parked per model) and lend the slot to the waiting prefill.
      const Slot freed = st.ledger.complete(vn);
      st.streamer.pause(vn);
      if (obs_.trace != nullptr)
        obs_.trace->instant("preempt", clock_,
                            static_cast<std::int32_t>(freed.device), vn, m);
      if (obs_.metrics != nullptr)
        obs_.metrics->counter("serve." + registry_.config(m).name +
                              ".preemptions")
            .add();
    } else {
      st.continuations.push_back(vn);
      st.pending_chain[static_cast<std::size_t>(vn)] = 1;
    }
  }
}

// Chain transition: swap finished stream slices for their next decode
// slices, model-id order, completion order within a model. Gated on the
// model's cutover stamp — a chain stalls while its model's state is
// mid-migration and resumes at dispatch_ready_.
void ColocatedServer::readmit_continuations() {
  for (std::size_t m = 0; m < models_.size(); ++m) {
    ModelState& st = models_[m];
    if (st.continuations.empty() || clock_ < dispatch_ready_[m]) continue;
    for (const std::int32_t vn : st.continuations) {
      Slot next = maybe_comm_fault(
          st.streamer.next_decode(st.dispatcher, vn, clock_, device_free_));
      charge(static_cast<std::int32_t>(m), next.compute_s);
      st.ledger.readmit(vn, std::move(next));
      st.pending_chain[static_cast<std::size_t>(vn)] = 0;
    }
    st.continuations.clear();
  }
}

// The share-weighted deadline arbiter: while any model has a
// dispatchable slice (free slot + stream at the head, full classify
// prefix, or timed-out oldest request), claim slots in ascending
// (deadline key + share debt, model id, VN id) order. Under contention
// the debt term dominates — an over-served model's key drifts up and it
// yields — fixing the small-batch starvation the deadline-only arbiter
// had. The VN-id part comes free: within a model, lowest_free() claims
// ascending VN ids.
void ColocatedServer::try_dispatch() {
  for (;;) {
    std::int32_t best = -1;
    double best_key = kInf;
    for (std::size_t m = 0; m < models_.size(); ++m) {
      ModelState& st = models_[m];
      if (clock_ < dispatch_ready_[m]) continue;  // still cutting over
      if (st.queue.empty()) continue;
      const std::int32_t vn = st.ledger.lowest_free();
      if (vn < 0) continue;
      const ModelConfig& mc = registry_.config(static_cast<std::int32_t>(m));
      bool dispatchable;
      if (TokenStreamer::is_stream(st.queue.front())) {
        dispatchable = true;  // a prefill admits alone, always ready
      } else {
        const std::int64_t cap =
            registry_.engine(static_cast<std::int32_t>(m)).mapping().vn_batch(vn);
        const std::int64_t prefix = classify_prefix(st, cap);
        const bool full_slice = prefix >= cap || prefix < st.queue.size();
        const bool timed_out =
            clock_ >= st.queue.front().arrival_s + mc.batch.max_wait_s;
        dispatchable = full_slice || timed_out;
      }
      if (!dispatchable) continue;
      // Strict < keeps the lowest model id on key ties (scan order).
      const double key = st.queue.front().arrival_s + mc.deadline_s +
                         share_time_[m];
      if (key < best_key) {
        best_key = key;
        best = static_cast<std::int32_t>(m);
      }
    }
    if (best < 0) break;
    dispatch_slice(best);
  }
}

// Un-park transition: paused streams take free slots left over after
// admissions, least share debt first (model id tie-break by the strict
// <). A paused stream only fits its own model's slots.
void ColocatedServer::try_resumes() {
  for (;;) {
    std::int32_t best = -1;
    double best_key = kInf;
    for (std::size_t m = 0; m < models_.size(); ++m) {
      ModelState& st = models_[m];
      if (clock_ < dispatch_ready_[m]) continue;
      if (!st.streamer.has_paused()) continue;
      if (st.ledger.lowest_free() < 0) continue;
      if (share_time_[m] < best_key) {
        best_key = share_time_[m];
        best = static_cast<std::int32_t>(m);
      }
    }
    if (best < 0) break;
    ModelState& st = models_[static_cast<std::size_t>(best)];
    const std::int32_t vn = st.ledger.lowest_free();
    Slot slot = maybe_comm_fault(
        st.streamer.resume(st.dispatcher, vn, clock_, device_free_));
    charge(best, slot.compute_s);
    st.ledger.admit(vn, std::move(slot));
  }
}

// Fault transition: fires every injected event due at the current stamp
// (complete_due first — a slice finishing exactly at a kill's stamp
// survives). A kill tears the dead device slot's in-flight slices off
// EVERY model with the single-model Server's per-kind recovery
// (classify/prefill requeue with honest retry stamps, decode chains park
// and resume from their last landed token), then remaps each engine's
// VNs onto the survivors as a ROLLING migration: the fail_device
// all-gathers serialize deepest-backlog-first (model id tie-break, like
// perform_resize), each model's new dispatches resuming at its own
// cutover stamp — on top of any cutover stamps still pending from an
// in-progress elastic migration, which is why the base is the max of the
// clock and the existing dispatch_ready_ horizon.
void ColocatedServer::process_faults_due() {
  if (injector_ == nullptr) return;
  for (const fault::FaultEvent& ev : injector_->due(clock_)) {
    FaultRecord rec;
    rec.time_s = clock_;
    rec.kind = ev.kind;
    rec.device = ev.device;
    switch (ev.kind) {
      case fault::FaultKind::kKill: {
        const std::int64_t ndev = shared_devices();
        if (ndev <= 1) {
          injector_->kill_skipped();
          rec.skipped = true;
          break;
        }
        const std::int64_t dead = ev.device % ndev;
        rec.device = dead;
        std::int64_t depth = 0;
        for (std::size_t m = 0; m < models_.size(); ++m) {
          ModelState& st = models_[m];
          std::vector<InferRequest> requeue;
          for (std::int32_t vn = 0; vn < st.ledger.total_slots(); ++vn) {
            const Slot& s = st.ledger.slot(vn);
            if (!s.busy || s.device != dead) continue;
            // A slice absorbed this instant (pending decode chain)
            // finished before the kill; it re-dispatches after cutover.
            if (st.pending_chain[static_cast<std::size_t>(vn)]) continue;
            Slot evicted = st.ledger.evict(vn);
            ++rec.evicted_slices;
            if (evicted.kind == SliceKind::kClassify) {
              for (InferRequest& r : evicted.requests) {
                r.queue_wait_accum_s += evicted.dispatch_s - r.enqueued_s();
                ++r.retries;
                requeue.push_back(std::move(r));
              }
            } else if (evicted.kind == SliceKind::kPrefill) {
              InferRequest r = st.streamer.cancel(vn);
              r.queue_wait_accum_s += evicted.dispatch_s - r.enqueued_s();
              ++r.retries;
              requeue.push_back(std::move(r));
            } else {
              st.streamer.mark_retry(vn);
              st.streamer.pause(vn);
            }
          }
          rec.requeued_requests += static_cast<std::int64_t>(requeue.size());
          std::sort(requeue.begin(), requeue.end(),
                    [](const InferRequest& a, const InferRequest& b) {
                      return a.id < b.id;
                    });
          for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
            it->requeue_s = clock_;
            st.queue.push_front(*it);
          }
          depth += st.queue.size();
        }

        // Rolling VN remap, deepest combined backlog first.
        std::vector<std::int32_t> order(models_.size());
        for (std::size_t m = 0; m < models_.size(); ++m)
          order[m] = static_cast<std::int32_t>(m);
        std::sort(order.begin(), order.end(),
                  [&](std::int32_t a, std::int32_t b) {
                    const std::int64_t qa =
                        models_[static_cast<std::size_t>(a)].queue.size();
                    const std::int64_t qb =
                        models_[static_cast<std::size_t>(b)].queue.size();
                    if (qa != qb) return qa > qb;
                    return a < b;
                  });
        double base = clock_;
        for (const double ready : dispatch_ready_)
          base = std::max(base, ready);
        double migration = 0.0;
        for (const std::int32_t m : order) {
          VirtualFlowEngine& eng = registry_.engine(m);
          const double before = eng.sim_time_s();
          eng.fail_device(dead);
          migration += eng.sim_time_s() - before;
          dispatch_ready_[static_cast<std::size_t>(m)] = base + migration;
          if (obs_.trace != nullptr)
            obs_.trace->instant("cutover", base + migration, /*device=*/-1,
                                /*vn=*/-1, m);
        }
        rec.migration_s = migration;
        device_free_.assign(static_cast<std::size_t>(shared_devices()), clock_);
        for (std::size_t m = 0; m < models_.size(); ++m)
          injector_->apply_slowdowns(registry_.engine(static_cast<std::int32_t>(m)));
        work_since_resize_ = 0;
        ResizeEvent rev;
        rev.time_s = base + migration;
        rev.from_devices = ndev;
        rev.to_devices = ndev - 1;
        rev.queue_depth = depth;
        rev.migration_s = migration;
        resizes_.push_back(rev);
        if (obs_.metrics != nullptr) {
          obs_.metrics->counter("serve.faults.requeued").add(rec.requeued_requests);
          obs_.metrics->gauge("serve.devices")
              .set(static_cast<double>(ndev - 1), clock_);
        }
        break;
      }
      case fault::FaultKind::kRecover:
        // Capacity returns to the shared elastic budget (capacity_cap);
        // the resize rule re-grows on observed load, not on the event.
        break;
      case fault::FaultKind::kStragglerStart:
      case fault::FaultKind::kStragglerEnd:
        for (std::size_t m = 0; m < models_.size(); ++m)
          injector_->apply_slowdowns(registry_.engine(static_cast<std::int32_t>(m)));
        break;
      case fault::FaultKind::kCommFault:
        // One-shot; consumed by the next dispatch (maybe_comm_fault).
        break;
    }
    faults_.push_back(rec);
  }
}

// Next event over all models: earliest in-flight completion, next
// arrival, a deferred decode chain's cutover stamp, a parked stream's
// resume opportunity, or — where a partial classify slice waits on a
// free slot — the oldest request's timeout. Terms at or before the
// clock denote states the dispatch phases have already consumed, so
// the pump loop always advances.
double ColocatedServer::next_event_internal() const {
  double next_t = kInf;
  for (std::size_t m = 0; m < models_.size(); ++m) {
    const ModelState& st = models_[m];
    // Earliest in-flight completion, excluding slots already absorbed
    // into a deferred decode chain (pending_chain): their done_s is
    // stale — at or before the clock — and their real next event is the
    // cutover stamp added below. Reading them through earliest_done_s()
    // would pin the horizon at the clock and livelock the loop.
    for (std::int32_t vn = 0; vn < st.ledger.total_slots(); ++vn) {
      const Slot& s = st.ledger.slot(vn);
      if (s.busy && !st.pending_chain[static_cast<std::size_t>(vn)])
        next_t = std::min(next_t, s.done_s);
    }
    const auto& trace = (*traces_)[m];
    if (st.next_arrival < trace.size())
      next_t = std::min(next_t, trace[st.next_arrival].arrival_s);
    if (!st.continuations.empty())
      next_t = std::min(next_t, dispatch_ready_[m]);
    if (st.streamer.has_paused() && st.ledger.lowest_free() >= 0)
      next_t = std::min(next_t, dispatch_ready_[m]);
    if (!st.queue.empty() && st.ledger.lowest_free() >= 0) {
      if (TokenStreamer::is_stream(st.queue.front())) {
        // A gated prefill fires at the cutover stamp; ungated it would
        // have been admitted already.
        next_t = std::min(next_t, dispatch_ready_[m]);
      } else {
        const std::int64_t cap = registry_.engine(static_cast<std::int32_t>(m))
                                     .mapping()
                                     .vn_batch(st.ledger.lowest_free());
        const std::int64_t prefix = classify_prefix(st, cap);
        const bool full_slice = prefix >= cap || prefix < st.queue.size();
        const double timeout =
            st.queue.front().arrival_s +
            registry_.config(static_cast<std::int32_t>(m)).batch.max_wait_s;
        const double t = full_slice
                             ? dispatch_ready_[m]
                             : std::max(timeout, dispatch_ready_[m]);
        next_t = std::min(next_t, t);
      }
    }
  }
  if (injector_ != nullptr) next_t = std::min(next_t, injector_->next_event_s());
  return next_t;
}

void ColocatedServer::pump(double horizon_s) {
  check(traces_ != nullptr, "begin() traces before pump()");
  while (true) {
    admit_up_to_clock();
    complete_due();
    process_faults_due();
    std::int64_t inflight = 0;
    for (const ModelState& st : models_)
      inflight += st.ledger.inflight_requests() + st.streamer.paused_streams();
    resize_if_needed(inflight);
    if (config_.stream.disaggregate) {
      // Admission-class work first (the point of disaggregation), then
      // decode chains, then parked streams into leftover slots.
      try_dispatch();
      readmit_continuations();
      try_resumes();
    } else {
      readmit_continuations();
      try_dispatch();
      // A kill can park decode chains even in FIFO mode (no-op without
      // faults: nothing pauses streams otherwise).
      try_resumes();
    }
    const double next_t = next_event_internal();
    if (next_t == kInf) break;  // ledgers idle, queues drained, traces done
    if (next_t > horizon_s) break;  // next event beyond this pump's horizon
    clock_ = std::max(clock_, next_t);
  }
  // A bounded pump leaves the clock at its horizon so the next load()
  // snapshot and grant charge from a consistent stamp.
  if (horizon_s < kInf && clock_ < horizon_s) clock_ = horizon_s;
}

void ColocatedServer::execute_model_batch(std::int32_t m, std::int64_t take) {
  ModelState& st = models_[static_cast<std::size_t>(m)];
  BatchEvent ev =
      st.dispatcher.run_formed_batch(st.queue, st.former, st.tracker, clock_, take);
  clock_ = ev.finish_s;
  ++work_since_resize_;
  ev.model = m;
  batches_.push_back(ev);
}

void ColocatedServer::replay_batch_boundary() {
  while (true) {
    admit_up_to_clock();

    // Deadline-ordered batch arbitration: among models whose former says
    // a batch is ready, serve the one whose oldest request's deadline is
    // earliest (model id breaks ties); each batch runs on the FULL shared
    // device set, so batches of different models serialize. (The
    // share-weighted arbiter is a continuous-mode feature; this baseline
    // stays deadline-only.)
    std::int32_t best = -1;
    double best_key = kInf;
    std::int64_t best_take = 0;
    for (std::size_t m = 0; m < models_.size(); ++m) {
      ModelState& st = models_[m];
      if (clock_ < dispatch_ready_[m]) continue;  // still cutting over
      const std::int64_t ready = st.former.ready_count(st.queue, clock_);
      if (ready == 0) continue;
      const ModelConfig& mc = registry_.config(static_cast<std::int32_t>(m));
      const double key = st.queue.front().arrival_s + mc.deadline_s;
      if (key < best_key) {
        best_key = key;
        best = static_cast<std::int32_t>(m);
        best_take = std::min(
            ready,
            registry_.engine(static_cast<std::int32_t>(m)).mapping().global_batch());
      }
    }

    if (best >= 0) {
      execute_model_batch(best, best_take);
      // Admit the service window's arrivals before recording depth and
      // deciding elasticity, exactly like the single-model server.
      admit_up_to_clock();
      batches_.back().queue_depth_after =
          models_[static_cast<std::size_t>(best)].queue.size();
      resize_if_needed(/*combined_inflight=*/0);
      continue;
    }

    // Nothing ready: jump to the next event — a queued model's timeout
    // (no earlier than its cutover stamp) or the next arrival of any
    // model.
    double next_t = kInf;
    for (std::size_t m = 0; m < models_.size(); ++m) {
      const ModelState& st = models_[m];
      if (!st.queue.empty()) {
        const double formable =
            st.former.ready_count(st.queue, clock_) > 0
                ? dispatch_ready_[m]  // gated batch fires at cutover
                : std::max(st.former.timeout_deadline_s(st.queue),
                           dispatch_ready_[m]);
        next_t = std::min(next_t, formable);
      }
      const auto& trace = (*traces_)[m];
      if (st.next_arrival < trace.size())
        next_t = std::min(next_t, trace[st.next_arrival].arrival_s);
    }
    if (next_t == kInf) break;  // queues drained, traces exhausted
    clock_ = std::max(clock_, next_t);
  }
}

}  // namespace vf::serve
