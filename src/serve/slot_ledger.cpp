#include "serve/slot_ledger.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/common.h"

namespace vf::serve {

SlotLedger::SlotLedger(std::int64_t total_vns)
    : slots_(static_cast<std::size_t>(total_vns)) {
  check(total_vns > 0, "slot ledger needs at least one virtual node");
}

std::int32_t SlotLedger::lowest_free() const {
  for (std::size_t vn = 0; vn < slots_.size(); ++vn)
    if (!slots_[vn].busy) return static_cast<std::int32_t>(vn);
  return -1;
}

double SlotLedger::earliest_done_s() const {
  double t = std::numeric_limits<double>::infinity();
  for (const Slot& s : slots_)
    if (s.busy) t = std::min(t, s.done_s);
  return t;
}

void SlotLedger::admit(std::int32_t vn, Slot slot) {
  check_index(vn, total_slots(), "virtual-node slot");
  Slot& dst = slots_[static_cast<std::size_t>(vn)];
  check(!dst.busy, "admit into busy slot VN " + std::to_string(vn));
  check(!slot.requests.empty(), "an admitted slice holds at least one request");
  check(slot.dispatch_s <= slot.done_s, "slice completes before its dispatch");
  slot.busy = true;
  inflight_ += static_cast<std::int64_t>(slot.requests.size());
  dst = std::move(slot);
  ++busy_;
  if (admits_ != nullptr) admits_->add();
}

std::vector<std::int32_t> SlotLedger::due(double now_s) const {
  std::vector<std::int32_t> out;
  for (std::size_t vn = 0; vn < slots_.size(); ++vn)
    if (slots_[vn].busy && slots_[vn].done_s <= now_s)
      out.push_back(static_cast<std::int32_t>(vn));
  std::sort(out.begin(), out.end(), [&](std::int32_t a, std::int32_t b) {
    const Slot& sa = slots_[static_cast<std::size_t>(a)];
    const Slot& sb = slots_[static_cast<std::size_t>(b)];
    if (sa.done_s != sb.done_s) return sa.done_s < sb.done_s;
    return a < b;
  });
  return out;
}

Slot SlotLedger::complete(std::int32_t vn) {
  check_index(vn, total_slots(), "virtual-node slot");
  Slot& s = slots_[static_cast<std::size_t>(vn)];
  check(s.busy, "complete on free slot VN " + std::to_string(vn));
  Slot out = std::move(s);
  s = Slot{};
  --busy_;
  inflight_ -= static_cast<std::int64_t>(out.requests.size());
  if (completes_ != nullptr) completes_->add();
  return out;
}

Slot SlotLedger::readmit(std::int32_t vn, Slot next) {
  check_index(vn, total_slots(), "virtual-node slot");
  Slot& s = slots_[static_cast<std::size_t>(vn)];
  check(s.busy, "readmit on free slot VN " + std::to_string(vn));
  check(!next.requests.empty(), "an admitted slice holds at least one request");
  check(next.dispatch_s <= next.done_s, "slice completes before its dispatch");
  check(s.done_s <= next.dispatch_s,
        "readmit into VN " + std::to_string(vn) + " before its slice finished");
  Slot out = std::move(s);
  inflight_ += static_cast<std::int64_t>(next.requests.size()) -
               static_cast<std::int64_t>(out.requests.size());
  next.busy = true;
  s = std::move(next);
  // busy_ is unchanged: the slot stays occupied across the swap.
  if (readmits_ != nullptr) readmits_->add();
  return out;
}

Slot SlotLedger::evict(std::int32_t vn) {
  check_index(vn, total_slots(), "virtual-node slot");
  Slot& s = slots_[static_cast<std::size_t>(vn)];
  check(s.busy, "evict on free slot VN " + std::to_string(vn));
  Slot out = std::move(s);
  s = Slot{};
  --busy_;
  inflight_ -= static_cast<std::int64_t>(out.requests.size());
  if (evictions_ != nullptr) evictions_->add();
  return out;
}

void SlotLedger::set_metrics(obs::MetricsRegistry* metrics,
                             const std::string& prefix) {
  if (metrics == nullptr) {
    admits_ = readmits_ = completes_ = evictions_ = nullptr;
    return;
  }
  admits_ = &metrics->counter(prefix + "slots.admits");
  readmits_ = &metrics->counter(prefix + "slots.readmits");
  completes_ = &metrics->counter(prefix + "slots.completes");
  evictions_ = &metrics->counter(prefix + "slots.evictions");
}

const Slot& SlotLedger::slot(std::int32_t vn) const {
  check_index(vn, total_slots(), "virtual-node slot");
  return slots_[static_cast<std::size_t>(vn)];
}

}  // namespace vf::serve
