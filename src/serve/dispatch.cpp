#include "serve/dispatch.h"

#include <algorithm>
#include <utility>

#include "util/common.h"

namespace vf::serve {

const char* slice_kind_name(SliceKind kind) {
  switch (kind) {
    case SliceKind::kClassify: return "classify";
    case SliceKind::kPrefill: return "prefill";
    case SliceKind::kDecode: return "decode";
  }
  return "unknown";
}

void record_slice_requests(const Slot& done, SloTracker& tracker) {
  for (std::size_t i = 0; i < done.requests.size(); ++i) {
    const InferRequest& r = done.requests[i];
    RequestRecord rec;
    rec.id = r.id;
    rec.arrival_s = r.arrival_s;
    rec.dispatch_s = done.dispatch_s;
    // Honest accounting across fault retries: waits that preceded evicted
    // dispatches accumulate on the request, and the final stretch runs
    // from the latest queue entry (requeue stamp after an eviction).
    rec.queue_wait_s =
        r.queue_wait_accum_s + (done.dispatch_s - r.enqueued_s());
    rec.retries = r.retries;
    rec.compute_s = done.compute_s;
    rec.comm_s = done.comm_s;
    rec.finish_s = done.done_s;
    rec.prediction = done.predictions[i];
    tracker.record_completion(std::move(rec));
  }
}

BatchEvent make_slice_event(const Slot& done, std::int32_t vn,
                            std::int64_t queue_depth_after) {
  BatchEvent ev;
  ev.start_s = done.dispatch_s;
  ev.finish_s = done.done_s;
  ev.size = static_cast<std::int64_t>(done.requests.size());
  // The hosting-device count that dispatched the slice — a slice can span
  // a seamless resize, and it ran on the mapping it was launched under.
  ev.devices = done.devices;
  ev.queue_depth_after = queue_depth_after;
  ev.vn = vn;
  ev.kind = done.kind;
  ev.device = done.device;
  ev.warm = done.warm;
  ev.trace_span = done.trace_span;
  return ev;
}

SliceDispatcher::SliceDispatcher(VirtualFlowEngine& engine,
                                 const Dataset& request_pool)
    : engine_(engine), request_pool_(request_pool) {}

void SliceDispatcher::set_observability(obs::Observability obs,
                                        std::int32_t model,
                                        const std::string& metrics_prefix) {
  obs_ = obs;
  model_ = model;
  if (obs.metrics == nullptr) {
    kind_counters_[0] = kind_counters_[1] = kind_counters_[2] = nullptr;
    batch_counter_ = nullptr;
    return;
  }
  kind_counters_[0] = &obs.metrics->counter(metrics_prefix + "slices.classify");
  kind_counters_[1] = &obs.metrics->counter(metrics_prefix + "slices.prefill");
  kind_counters_[2] = &obs.metrics->counter(metrics_prefix + "slices.decode");
  batch_counter_ = &obs.metrics->counter(metrics_prefix + "batches.formed");
}

Slot SliceDispatcher::dispatch_rows(std::int32_t vn, SliceKind kind,
                                    double now_s,
                                    std::vector<double>& device_free,
                                    std::vector<InferRequest> requests,
                                    const std::vector<std::int64_t>& rows) {
  check(!rows.empty(), "a dispatched slice needs at least one feature row");
  slices_scratch_.resize(1);
  InferSlice& slice = slices_scratch_.front();
  slice.vn = vn;
  slice.decode = kind == SliceKind::kDecode;
  request_pool_.gather(rows, slice.features, labels_scratch_);
  InferStats stats = engine_.infer(slices_scratch_);
  const SliceCost& cost = stats.slice_costs.front();

  // Warm/cold dispatch pricing (price_slice_dispatch, shared by every
  // serving path so the price models cannot diverge).
  const auto dev = static_cast<std::size_t>(cost.device);
  const SliceSchedule sched = price_slice_dispatch(now_s, device_free[dev], cost);
  Slot slot;
  slot.kind = kind;
  slot.dispatch_s = now_s;
  // A single-VN slice runs on exactly the one device hosting its VN
  // (reporting the full device-set size here made BatchEvent accounting
  // disagree with the per-device trace spans).
  slot.devices = 1;
  slot.device = cost.device;
  slot.warm = sched.warm;
  slot.compute_s = sched.compute_s;
  slot.comm_s = cost.comm_s;
  slot.done_s = sched.done_s;
  // The device is busy for the forward pass; the logits return rides
  // the link while the device moves on to its next slice.
  device_free[dev] = sched.start_s + sched.compute_s;
  if (obs_.trace != nullptr) {
    // The span covers the device's busy window plus the logits return;
    // queue depth is finalized by the server once post-dispatch admissions
    // have settled.
    slot.trace_span =
        obs_.trace->span(slice_kind_name(kind), sched.start_s, sched.done_s,
                         static_cast<std::int32_t>(cost.device), vn, model_,
                         static_cast<std::int64_t>(requests.size()), sched.warm);
  }
  if (kind_counters_[0] != nullptr)
    kind_counters_[static_cast<std::size_t>(kind)]->add();
  slot.requests = std::move(requests);
  slot.predictions = std::move(stats.predictions);
  return slot;
}

Slot SliceDispatcher::dispatch_classify(std::int32_t vn, double now_s,
                                        std::vector<double>& device_free,
                                        std::vector<InferRequest> requests) {
  idx_scratch_.clear();
  idx_scratch_.reserve(requests.size());
  for (const InferRequest& r : requests) idx_scratch_.push_back(r.example_index);
  return dispatch_rows(vn, SliceKind::kClassify, now_s, device_free,
                       std::move(requests), idx_scratch_);
}

BatchEvent SliceDispatcher::run_formed_batch(RequestQueue& queue,
                                             const BatchFormer& former,
                                             SloTracker& tracker,
                                             double start_s, std::int64_t take) {
  const std::vector<InferRequest> batch = queue.pop(take);
  const std::vector<VnPack> packs = former.pack(take, engine_.mapping());

  // Packs take FIFO positions contiguously in ascending VN order, so the
  // engine's slice-ordered prediction vector lines up with batch position.
  // The slice vector and each slice's feature matrix are member scratch,
  // reused batch after batch.
  slices_scratch_.resize(packs.size());
  for (std::size_t pi = 0; pi < packs.size(); ++pi) {
    const VnPack& p = packs[pi];
    idx_scratch_.clear();
    idx_scratch_.reserve(p.positions.size());
    for (const std::int64_t pos : p.positions)
      idx_scratch_.push_back(batch[static_cast<std::size_t>(pos)].example_index);
    InferSlice& s = slices_scratch_[pi];
    s.vn = p.vn;
    s.decode = false;
    request_pool_.gather(idx_scratch_, s.features, labels_scratch_);
  }

  const InferStats stats = engine_.infer(slices_scratch_);
  const double finish = start_s + stats.compute_s + stats.comm_s;

  for (std::int64_t p = 0; p < take; ++p) {
    const InferRequest& r = batch[static_cast<std::size_t>(p)];
    RequestRecord rec;
    rec.id = r.id;
    rec.arrival_s = r.arrival_s;
    rec.dispatch_s = start_s;
    rec.queue_wait_s = start_s - r.arrival_s;
    rec.compute_s = stats.compute_s;
    rec.comm_s = stats.comm_s;
    rec.finish_s = finish;
    rec.prediction = stats.predictions[static_cast<std::size_t>(p)];
    tracker.record_completion(std::move(rec));
  }

  BatchEvent ev;
  ev.start_s = start_s;
  ev.finish_s = finish;
  ev.size = take;
  ev.devices = static_cast<std::int64_t>(engine_.devices().size());
  // queue_depth_after is finalized by the caller once the arrivals that
  // landed during this batch's service window are admitted.
  ev.queue_depth_after = queue.size();
  if (obs_.trace != nullptr) {
    // A formed batch runs to a barrier across the whole device set, so its
    // span lives on the control track (device -1), sized by the take.
    ev.trace_span = obs_.trace->span("batch", start_s, finish, /*device=*/-1,
                                     /*vn=*/-1, model_, take, /*warm=*/false);
  }
  if (batch_counter_ != nullptr) batch_counter_->add();
  return ev;
}

}  // namespace vf::serve
