// Layer abstraction for the trainable neural-network substrate.
//
// Layers are deliberately deterministic: any randomness (dropout masks) is
// keyed by (experiment seed, layer index, step, virtual-node id), never by
// call order, so that the same logical computation yields bit-identical
// results regardless of which device executes it.
//
// The primitive operations are the `_into` forms: they write the result
// into a caller-owned tensor, which the engine draws from a per-VN
// Workspace so a warmed-up training step performs zero tensor heap
// allocations. The by-value forward()/backward() are thin convenience
// wrappers used by tests and examples.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/state.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace vf {

/// Execution context threaded through forward passes. Identifies *which*
/// logical computation this is (step + virtual node) and where stateful
/// kernels should read/write their per-VN state.
struct ExecContext {
  std::uint64_t seed = 0;     ///< experiment seed (keys dropout masks)
  std::int64_t step = 0;      ///< global training step
  std::int32_t vn_id = 0;     ///< virtual node id executing this pass
  bool training = true;       ///< training vs inference mode
  VnState* state = nullptr;   ///< per-VN stateful-kernel storage (may be null)
  /// Reusable scratch arena, keyed by vn_id (may be null: layers fall back
  /// to private member scratch, still allocation-free after warm-up).
  Workspace* ws = nullptr;
};

/// Base class for all layers. A layer caches whatever it needs during
/// forward_into() so that the next backward_into() can produce input
/// gradients and accumulate parameter gradients.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = default;
  Layer& operator=(const Layer&) = default;

  /// Computes the layer output into `y` (reshaped via ensure_shape and
  /// fully overwritten). `y` must not alias `x`.
  virtual void forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) = 0;

  /// Consumes d(loss)/d(output), writes d(loss)/d(input) into `grad_in`
  /// (must not alias `grad_out`), and adds parameter gradients into the
  /// tensors returned by grads(). Must follow a training-mode
  /// forward_into() on the same instance: backward reuses that forward's
  /// caches AND its workspace (stashed at training-forward time — the
  /// workspace must still be alive; eval-mode forwards in between are
  /// fine, they neither cache nor re-stash).
  virtual void backward_into(const Tensor& grad_out, Tensor& grad_in) = 0;

  /// Convenience by-value wrappers over the `_into` primitives.
  Tensor forward(const Tensor& x, const ExecContext& ctx);
  Tensor backward(const Tensor& grad_out);

  /// Trainable parameters (paired 1:1 with grads()).
  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<const Tensor*> params() const { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }

  /// Zeroes accumulated parameter gradients.
  void zero_grad();

  /// Deep copy (used to build per-device model replicas).
  virtual std::unique_ptr<Layer> clone() const = 0;

  virtual std::string name() const = 0;

  /// Total trainable scalar count.
  std::int64_t param_count() const;

  /// Set by Sequential when the layer is added; gives stateful/random
  /// layers a stable identity within the model. Composite layers override
  /// this to re-key their children into a disjoint index range.
  virtual void set_layer_index(std::int32_t idx) { layer_index_ = idx; }
  std::int32_t layer_index() const { return layer_index_; }

 protected:
  /// Workspace tag for this layer's scratch slot `purpose` (0..3). Tag
  /// ranges are disjoint because layer indices are unique across a model
  /// tree — with ONE exception: a composite wrapper shares its index with
  /// the subtree it wraps (ResidualBlock and its inner Sequential), so
  /// wrappers must not use ws tags of their own. Re-keying them apart is
  /// not an option: layer_index feeds dropout streams and batch-norm
  /// state keys, so it is frozen by the bit-compatibility contract.
  std::int32_t ws_tag(std::int32_t purpose) const { return (layer_index_ + 1) * 4 + purpose; }

  std::int32_t layer_index_ = -1;
};

}  // namespace vf
