// Layer abstraction for the trainable neural-network substrate.
//
// Layers are deliberately deterministic: any randomness (dropout masks) is
// keyed by (experiment seed, layer index, step, virtual-node id), never by
// call order, so that the same logical computation yields bit-identical
// results regardless of which device executes it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/state.h"
#include "tensor/tensor.h"

namespace vf {

/// Execution context threaded through forward passes. Identifies *which*
/// logical computation this is (step + virtual node) and where stateful
/// kernels should read/write their per-VN state.
struct ExecContext {
  std::uint64_t seed = 0;     ///< experiment seed (keys dropout masks)
  std::int64_t step = 0;      ///< global training step
  std::int32_t vn_id = 0;     ///< virtual node id executing this pass
  bool training = true;       ///< training vs inference mode
  VnState* state = nullptr;   ///< per-VN stateful-kernel storage (may be null)
};

/// Base class for all layers. A layer caches whatever it needs during
/// forward() so that the next backward() can produce input gradients and
/// accumulate parameter gradients.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = default;
  Layer& operator=(const Layer&) = default;

  virtual Tensor forward(const Tensor& x, const ExecContext& ctx) = 0;

  /// Consumes d(loss)/d(output), returns d(loss)/d(input), and adds
  /// parameter gradients into the tensors returned by grads().
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Trainable parameters (paired 1:1 with grads()).
  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<const Tensor*> params() const { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }

  /// Zeroes accumulated parameter gradients.
  void zero_grad();

  /// Deep copy (used to build per-device model replicas).
  virtual std::unique_ptr<Layer> clone() const = 0;

  virtual std::string name() const = 0;

  /// Total trainable scalar count.
  std::int64_t param_count() const;

  /// Set by Sequential when the layer is added; gives stateful/random
  /// layers a stable identity within the model. Composite layers override
  /// this to re-key their children into a disjoint index range.
  virtual void set_layer_index(std::int32_t idx) { layer_index_ = idx; }
  std::int32_t layer_index() const { return layer_index_; }

 protected:
  std::int32_t layer_index_ = -1;
};

}  // namespace vf
