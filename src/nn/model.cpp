#include "nn/model.h"

#include <algorithm>

#include "util/common.h"

namespace vf {

Sequential::Sequential(const Sequential& other) { *this = other; }

Sequential& Sequential::operator=(const Sequential& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  next_index_ = other.next_index_;
  layer_index_ = other.layer_index_;
  return *this;
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  check(layer != nullptr, "cannot add null layer");
  layers_.push_back(std::move(layer));
  set_layer_index(layer_index_);  // re-key all children deterministically
  return *this;
}

void Sequential::set_layer_index(std::int32_t idx) {
  layer_index_ = idx;
  // Children of the root (-1) get 0, 1, 2, ...; children of a nested
  // composite at index k get (k+1)*1000 + position, keeping subtree index
  // ranges disjoint for realistic model depths.
  const std::int32_t base = (idx + 1) * 1000;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->set_layer_index(base + static_cast<std::int32_t>(i));
  }
}

Tensor& Sequential::pass_buf(Workspace* ws, std::int32_t vn, std::int32_t which) {
  if (ws != nullptr) return ws->acquire(vn, ws_tag(which));
  return scratch_[static_cast<std::size_t>(which)];
}

void Sequential::forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) {
  check(&y != &x, "Sequential: y must not alias x");
  // Stash the backward arena only for training forwards, so backward
  // always draws scratch from the arena of the forward whose caches it
  // consumes (eval forwards may interleave with a different workspace).
  if (ctx.training) {
    bw_ws_ = ctx.ws;
    bw_vn_ = ctx.vn_id;
  }
  const std::size_t n = layers_.size();
  if (n == 0) {
    y = x;
    return;
  }
  // Intermediates alternate between two reusable buffers; each layer reads
  // one and writes the other (layers never alias input and output), and
  // the last layer writes straight into the caller's tensor.
  const Tensor* cur = &x;
  for (std::size_t i = 0; i < n; ++i) {
    Tensor& dst = (i + 1 == n)
                      ? y
                      : pass_buf(ctx.ws, ctx.vn_id, static_cast<std::int32_t>(i & 1));
    layers_[i]->forward_into(*cur, dst, ctx);
    cur = &dst;
  }
}

void Sequential::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  check(&grad_in != &grad_out, "Sequential: grad_in must not alias grad_out");
  const std::size_t n = layers_.size();
  if (n == 0) {
    grad_in = grad_out;
    return;
  }
  const Tensor* cur = &grad_out;
  for (std::size_t done = 0; done < n; ++done) {
    const std::size_t idx = n - 1 - done;
    Tensor& dst = (idx == 0)
                      ? grad_in
                      : pass_buf(bw_ws_, bw_vn_, static_cast<std::int32_t>(2 + (done & 1)));
    layers_[idx]->backward_into(*cur, dst);
    cur = &dst;
  }
}

std::vector<Tensor*> Sequential::params() {
  std::vector<Tensor*> out;
  for (auto& l : layers_)
    for (Tensor* p : l->params()) out.push_back(p);
  return out;
}

std::vector<const Tensor*> Sequential::params() const {
  std::vector<const Tensor*> out;
  for (const auto& l : layers_)
    for (const Tensor* p : l->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Sequential::grads() {
  std::vector<Tensor*> out;
  for (auto& l : layers_)
    for (Tensor* g : l->grads()) out.push_back(g);
  return out;
}

std::unique_ptr<Layer> Sequential::clone() const {
  return std::make_unique<Sequential>(*this);
}

Layer& Sequential::layer(std::size_t i) {
  check(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

Tensor Sequential::flatten_params() const {
  std::int64_t total = 0;
  for (const Tensor* p : params()) total += p->size();
  Tensor flat({total});
  std::int64_t off = 0;
  for (const Tensor* p : params()) {
    std::copy(p->data().begin(), p->data().end(), flat.data().begin() + off);
    off += p->size();
  }
  return flat;
}

void Sequential::unflatten_params(const Tensor& flat) {
  std::int64_t off = 0;
  for (Tensor* p : params()) {
    check(off + p->size() <= flat.size(), "unflatten_params: flat tensor too small");
    std::copy_n(flat.data().begin() + off, p->size(), p->data().begin());
    off += p->size();
  }
  check(off == flat.size(), "unflatten_params: flat tensor size mismatch");
}

Tensor Sequential::flatten_grads() const {
  Tensor flat;
  flatten_grads_into(flat);
  return flat;
}

void Sequential::flatten_grads_into(Tensor& flat) const {
  auto* self = const_cast<Sequential*>(this);
  const auto grads = self->grads();
  std::int64_t total = 0;
  for (Tensor* g : grads) total += g->size();
  flat.ensure_shape({total});
  std::int64_t off = 0;
  for (Tensor* g : grads) {
    std::copy(g->data().begin(), g->data().end(), flat.data().begin() + off);
    off += g->size();
  }
}

void Sequential::load_grads(const Tensor& flat) {
  std::int64_t off = 0;
  for (Tensor* g : grads()) {
    check(off + g->size() <= flat.size(), "load_grads: flat tensor too small");
    std::copy_n(flat.data().begin() + off, g->size(), g->data().begin());
    off += g->size();
  }
  check(off == flat.size(), "load_grads: flat tensor size mismatch");
}

std::string Sequential::describe() const {
  std::string s;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i) s += "-";
    s += layers_[i]->name();
  }
  return s;
}

// -------------------------------------------------------- ResidualBlock

ResidualBlock::ResidualBlock(Sequential inner) : inner_(std::move(inner)) {}

void ResidualBlock::set_layer_index(std::int32_t idx) {
  layer_index_ = idx;
  inner_.set_layer_index(idx);
}

void ResidualBlock::forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) {
  inner_.forward_into(x, y, ctx);
  check_same_shape(x, y, "ResidualBlock (inner must preserve shape)");
  y.add_(x);
}

void ResidualBlock::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  inner_.backward_into(grad_out, grad_in);
  grad_in.add_(grad_out);
}

std::unique_ptr<Layer> ResidualBlock::clone() const {
  return std::make_unique<ResidualBlock>(*this);
}

}  // namespace vf
