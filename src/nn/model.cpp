#include "nn/model.h"

#include <algorithm>

#include "util/common.h"

namespace vf {

Sequential::Sequential(const Sequential& other) { *this = other; }

Sequential& Sequential::operator=(const Sequential& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  next_index_ = other.next_index_;
  layer_index_ = other.layer_index_;
  return *this;
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  check(layer != nullptr, "cannot add null layer");
  layers_.push_back(std::move(layer));
  set_layer_index(layer_index_);  // re-key all children deterministically
  return *this;
}

void Sequential::set_layer_index(std::int32_t idx) {
  layer_index_ = idx;
  // Children of the root (-1) get 0, 1, 2, ...; children of a nested
  // composite at index k get (k+1)*1000 + position, keeping subtree index
  // ranges disjoint for realistic model depths.
  const std::int32_t base = (idx + 1) * 1000;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->set_layer_index(base + static_cast<std::int32_t>(i));
  }
}

Tensor Sequential::forward(const Tensor& x, const ExecContext& ctx) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h, ctx);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<Tensor*> Sequential::params() {
  std::vector<Tensor*> out;
  for (auto& l : layers_)
    for (Tensor* p : l->params()) out.push_back(p);
  return out;
}

std::vector<const Tensor*> Sequential::params() const {
  std::vector<const Tensor*> out;
  for (const auto& l : layers_)
    for (const Tensor* p : l->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Sequential::grads() {
  std::vector<Tensor*> out;
  for (auto& l : layers_)
    for (Tensor* g : l->grads()) out.push_back(g);
  return out;
}

std::unique_ptr<Layer> Sequential::clone() const {
  return std::make_unique<Sequential>(*this);
}

Layer& Sequential::layer(std::size_t i) {
  check(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

Tensor Sequential::flatten_params() const {
  std::int64_t total = 0;
  for (const Tensor* p : params()) total += p->size();
  Tensor flat({total});
  std::int64_t off = 0;
  for (const Tensor* p : params()) {
    std::copy(p->data().begin(), p->data().end(), flat.data().begin() + off);
    off += p->size();
  }
  return flat;
}

void Sequential::unflatten_params(const Tensor& flat) {
  std::int64_t off = 0;
  for (Tensor* p : params()) {
    check(off + p->size() <= flat.size(), "unflatten_params: flat tensor too small");
    std::copy_n(flat.data().begin() + off, p->size(), p->data().begin());
    off += p->size();
  }
  check(off == flat.size(), "unflatten_params: flat tensor size mismatch");
}

Tensor Sequential::flatten_grads() const {
  auto* self = const_cast<Sequential*>(this);
  std::int64_t total = 0;
  for (Tensor* g : self->grads()) total += g->size();
  Tensor flat({total});
  std::int64_t off = 0;
  for (Tensor* g : self->grads()) {
    std::copy(g->data().begin(), g->data().end(), flat.data().begin() + off);
    off += g->size();
  }
  return flat;
}

void Sequential::load_grads(const Tensor& flat) {
  std::int64_t off = 0;
  for (Tensor* g : grads()) {
    check(off + g->size() <= flat.size(), "load_grads: flat tensor too small");
    std::copy_n(flat.data().begin() + off, g->size(), g->data().begin());
    off += g->size();
  }
  check(off == flat.size(), "load_grads: flat tensor size mismatch");
}

std::string Sequential::describe() const {
  std::string s;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i) s += "-";
    s += layers_[i]->name();
  }
  return s;
}

// -------------------------------------------------------- ResidualBlock

ResidualBlock::ResidualBlock(Sequential inner) : inner_(std::move(inner)) {}

void ResidualBlock::set_layer_index(std::int32_t idx) {
  layer_index_ = idx;
  inner_.set_layer_index(idx);
}

Tensor ResidualBlock::forward(const Tensor& x, const ExecContext& ctx) {
  Tensor y = inner_.forward(x, ctx);
  check_same_shape(x, y, "ResidualBlock (inner must preserve shape)");
  return y.add_(x);
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  Tensor g = inner_.backward(grad_out);
  return g.add_(grad_out);
}

std::unique_ptr<Layer> ResidualBlock::clone() const {
  return std::make_unique<ResidualBlock>(*this);
}

}  // namespace vf
