// Learning-rate schedules.
//
// The schedules are expressed in *steps of the global batch*, never in
// device counts — an LR schedule that referenced the hardware would break
// the hardware-independence contract that VirtualFlow exists to provide.
// The TF* baseline in the reproducibility experiments deliberately reuses
// a schedule tuned for the large global batch while shrinking the batch,
// which is exactly the paper's "no retuning" failure mode.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vf {

/// Learning rate as a function of the global step.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  LrSchedule() = default;
  LrSchedule(const LrSchedule&) = default;
  LrSchedule& operator=(const LrSchedule&) = default;

  virtual float lr(std::int64_t step) const = 0;
  virtual std::unique_ptr<LrSchedule> clone() const = 0;
  virtual std::string name() const = 0;
};

/// Fixed learning rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr);
  float lr(std::int64_t step) const override;
  std::unique_ptr<LrSchedule> clone() const override;
  std::string name() const override { return "constant"; }

 private:
  float lr_;
};

/// Linear warmup to `peak` over `warmup_steps`, then piecewise-constant
/// decay: multiply by `decay` at each step listed in `milestones`.
/// This mirrors the Goyal et al. ImageNet recipe the paper's ResNet-50
/// experiments use (warmup + step decay at fixed epochs).
class WarmupStepDecayLr : public LrSchedule {
 public:
  WarmupStepDecayLr(float peak, std::int64_t warmup_steps,
                    std::vector<std::int64_t> milestones, float decay);
  float lr(std::int64_t step) const override;
  std::unique_ptr<LrSchedule> clone() const override;
  std::string name() const override { return "warmup_step_decay"; }

 private:
  float peak_;
  std::int64_t warmup_steps_;
  std::vector<std::int64_t> milestones_;
  float decay_;
};

/// Cosine decay from `peak` to `floor` over `total_steps`.
class CosineLr : public LrSchedule {
 public:
  CosineLr(float peak, std::int64_t total_steps, float floor = 0.0F);
  float lr(std::int64_t step) const override;
  std::unique_ptr<LrSchedule> clone() const override;
  std::string name() const override { return "cosine"; }

 private:
  float peak_;
  std::int64_t total_steps_;
  float floor_;
};

}  // namespace vf
