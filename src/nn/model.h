// Sequential model container, residual blocks, and parameter flattening.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/layers.h"

namespace vf {

/// A sequential stack of layers. This is VirtualFlow's "model graph": the
/// graph contains *no* hardware configuration — device placement lives
/// entirely in the VnMapping (src/core/mapping.h), which is the point of
/// the paper's decoupling argument.
class Sequential : public Layer {
 public:
  Sequential() = default;
  Sequential(const Sequential& other);
  Sequential& operator=(const Sequential& other);
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Appends a layer; assigns its stable layer index.
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Runs the stack through reusable ping-pong buffers (drawn from
  /// ctx.ws when present, private member scratch otherwise); only the
  /// final layer writes `y`. Zero tensor allocations once warm.
  void forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  std::vector<Tensor*> params() override;
  std::vector<const Tensor*> params() const override;
  std::vector<Tensor*> grads() override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "sequential"; }

  /// Re-keys children into an index range disjoint from other subtrees so
  /// that dropout streams and batch-norm state keys never collide.
  void set_layer_index(std::int32_t idx) override;

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i);

  /// Copies all parameters into one contiguous vector (used to model the
  /// flat gradient buffer and for all-gather state migration).
  Tensor flatten_params() const;
  /// Loads parameters back from a flat vector produced by flatten_params().
  void unflatten_params(const Tensor& flat);
  /// Same for accumulated gradients. The `_into` form reuses `flat`'s
  /// buffer (the engine's per-VN gradient-sum slots).
  Tensor flatten_grads() const;
  void flatten_grads_into(Tensor& flat) const;
  void load_grads(const Tensor& flat);

  /// Structural description, e.g. "dense(64x128)-relu-bn-dense(128x16)".
  std::string describe() const;

 private:
  /// Ping-pong buffer `which` (0/1 forward, 2/3 backward) for the pass
  /// intermediates: a per-VN workspace slot when `ws` is set, else the
  /// member fallback.
  Tensor& pass_buf(Workspace* ws, std::int32_t vn, std::int32_t which);

  std::vector<std::unique_ptr<Layer>> layers_;
  std::int32_t next_index_ = 0;
  // Workspace stash from the last forward (backward_into has no ctx).
  Workspace* bw_ws_ = nullptr;
  std::int32_t bw_vn_ = 0;
  // Fallback scratch for ws-less callers (tests, examples). Not copied by
  // the copy operations — scratch contents are never meaningful.
  Tensor scratch_[4];
};

/// Residual wrapper: y = x + inner(x). Input and output dims must agree.
class ResidualBlock : public Layer {
 public:
  explicit ResidualBlock(Sequential inner);

  void forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  std::vector<Tensor*> params() override { return inner_.params(); }
  std::vector<const Tensor*> params() const override { return inner_.params(); }
  std::vector<Tensor*> grads() override { return inner_.grads(); }
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "residual"; }
  void set_layer_index(std::int32_t idx) override;

 private:
  Sequential inner_;
};

}  // namespace vf
