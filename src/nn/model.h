// Sequential model container, residual blocks, and parameter flattening.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/layers.h"

namespace vf {

/// A sequential stack of layers. This is VirtualFlow's "model graph": the
/// graph contains *no* hardware configuration — device placement lives
/// entirely in the VnMapping (src/core/mapping.h), which is the point of
/// the paper's decoupling argument.
class Sequential : public Layer {
 public:
  Sequential() = default;
  Sequential(const Sequential& other);
  Sequential& operator=(const Sequential& other);
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Appends a layer; assigns its stable layer index.
  Sequential& add(std::unique_ptr<Layer> layer);

  Tensor forward(const Tensor& x, const ExecContext& ctx) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override;
  std::vector<const Tensor*> params() const override;
  std::vector<Tensor*> grads() override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "sequential"; }

  /// Re-keys children into an index range disjoint from other subtrees so
  /// that dropout streams and batch-norm state keys never collide.
  void set_layer_index(std::int32_t idx) override;

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i);

  /// Copies all parameters into one contiguous vector (used to model the
  /// flat gradient buffer and for all-gather state migration).
  Tensor flatten_params() const;
  /// Loads parameters back from a flat vector produced by flatten_params().
  void unflatten_params(const Tensor& flat);
  /// Same for accumulated gradients.
  Tensor flatten_grads() const;
  void load_grads(const Tensor& flat);

  /// Structural description, e.g. "dense(64x128)-relu-bn-dense(128x16)".
  std::string describe() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::int32_t next_index_ = 0;
};

/// Residual wrapper: y = x + inner(x). Input and output dims must agree.
class ResidualBlock : public Layer {
 public:
  explicit ResidualBlock(Sequential inner);

  Tensor forward(const Tensor& x, const ExecContext& ctx) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override { return inner_.params(); }
  std::vector<const Tensor*> params() const override { return inner_.params(); }
  std::vector<Tensor*> grads() override { return inner_.grads(); }
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "residual"; }
  void set_layer_index(std::int32_t idx) override;

 private:
  Sequential inner_;
};

}  // namespace vf
