#include "nn/schedule.h"

#include <cmath>
#include <vector>

#include "util/common.h"

namespace vf {

ConstantLr::ConstantLr(float lr) : lr_(lr) { check(lr > 0.0F, "lr must be positive"); }

float ConstantLr::lr(std::int64_t /*step*/) const { return lr_; }

std::unique_ptr<LrSchedule> ConstantLr::clone() const {
  return std::make_unique<ConstantLr>(*this);
}

WarmupStepDecayLr::WarmupStepDecayLr(float peak, std::int64_t warmup_steps,
                                     std::vector<std::int64_t> milestones, float decay)
    : peak_(peak),
      warmup_steps_(warmup_steps),
      milestones_(std::move(milestones)),
      decay_(decay) {
  check(peak > 0.0F, "peak lr must be positive");
  check(warmup_steps >= 0, "warmup steps must be non-negative");
  check(decay > 0.0F && decay <= 1.0F, "decay must be in (0, 1]");
  for (std::size_t i = 1; i < milestones_.size(); ++i)
    check(milestones_[i] > milestones_[i - 1], "milestones must be increasing");
}

float WarmupStepDecayLr::lr(std::int64_t step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return peak_ * static_cast<float>(step + 1) / static_cast<float>(warmup_steps_);
  }
  float v = peak_;
  for (auto m : milestones_)
    if (step >= m) v *= decay_;
  return v;
}

std::unique_ptr<LrSchedule> WarmupStepDecayLr::clone() const {
  return std::make_unique<WarmupStepDecayLr>(*this);
}

CosineLr::CosineLr(float peak, std::int64_t total_steps, float floor)
    : peak_(peak), total_steps_(total_steps), floor_(floor) {
  check(peak > 0.0F, "peak lr must be positive");
  check(total_steps > 0, "total steps must be positive");
  check(floor >= 0.0F && floor <= peak, "floor must be in [0, peak]");
}

float CosineLr::lr(std::int64_t step) const {
  const double frac =
      std::min(1.0, static_cast<double>(step) / static_cast<double>(total_steps_));
  const double cos_term = 0.5 * (1.0 + std::cos(3.14159265358979323846 * frac));
  return floor_ + static_cast<float>(cos_term) * (peak_ - floor_);
}

std::unique_ptr<LrSchedule> CosineLr::clone() const {
  return std::make_unique<CosineLr>(*this);
}

}  // namespace vf
