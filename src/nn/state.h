// Per-virtual-node stateful-kernel storage.
//
// The paper (§4.1) calls out that some kernels carry state that is computed
// independently on each worker and never synchronized — the canonical
// example is batch normalization's moving mean/variance. VirtualFlow must
// migrate this state when virtual nodes move between accelerators, or the
// state is effectively reset and convergence suffers.
//
// We generalize: stateful kernels store their tensors in a VnState owned by
// the *virtual node*, not by the device or the model replica. The elastic
// controller migrates VnState objects alongside model parameters in the
// bootstrap all-gather. This is also what makes training bit-exact under
// remapping: the state travels with the logical VN id.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace vf {

/// Keyed tensor slots for one virtual node's stateful kernels.
class VnState {
 public:
  /// Returns the slot for `key`, creating it zero-initialized with `shape`
  /// on first use. The shape must match on subsequent calls.
  Tensor& slot(const std::string& key, const std::vector<std::int64_t>& shape);

  /// True if the slot exists already.
  bool has(const std::string& key) const { return slots_.count(key) > 0; }

  /// Read-only access; throws if missing.
  const Tensor& get(const std::string& key) const;

  /// Overwrites (or creates) a slot. Used by state migration.
  void put(const std::string& key, Tensor value);

  /// All keys in deterministic (lexicographic) order.
  std::vector<std::string> keys() const;

  /// Total bytes held (for migration-cost accounting).
  std::int64_t total_bytes() const;

  /// Erases everything; models the paper's "resetting internal state"
  /// failure mode when new workers are bootstrapped without migration.
  void clear() { slots_.clear(); }

  bool empty() const { return slots_.empty(); }

 private:
  std::map<std::string, Tensor> slots_;
};

}  // namespace vf
