// Concrete layers: Dense, ReLU, Tanh, Dropout, BatchNorm1d, LayerNorm.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace vf {

/// Fully connected layer: y = x @ W + b, with W of shape [in, out].
class Dense : public Layer {
 public:
  /// Weights use scaled-Gaussian (He-style) init keyed by `rng`.
  Dense(std::int64_t in_dim, std::int64_t out_dim, CounterRng& rng);

  void forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<const Tensor*> params() const override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &db_}; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Dense>(*this); }
  std::string name() const override { return "dense"; }

  std::int64_t in_dim() const { return w_.rows(); }
  std::int64_t out_dim() const { return w_.cols(); }

 private:
  Tensor w_, b_, dw_, db_;
  Tensor cached_input_;
  // Workspace stash from the last forward (gradient temporaries live
  // there); the member tensors are the ws-less fallback.
  Workspace* bw_ws_ = nullptr;
  std::int32_t bw_vn_ = 0;
  Tensor dw_tmp_, db_tmp_;
};

/// Rectified linear unit.
class Relu : public Layer {
 public:
  void forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Relu>(*this); }
  std::string name() const override { return "relu"; }

 private:
  Tensor cached_input_;
};

/// Hyperbolic tangent activation.
class Tanh : public Layer {
 public:
  void forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Tanh>(*this); }
  std::string name() const override { return "tanh"; }

 private:
  Tensor cached_output_;
};

/// Inverted dropout. The mask for a given (step, vn_id) pair is a pure
/// function of the experiment seed and the layer index, so remapping VNs
/// across devices cannot change which units are dropped.
class Dropout : public Layer {
 public:
  explicit Dropout(float rate);

  void forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Dropout>(*this); }
  std::string name() const override { return "dropout"; }

  float rate() const { return rate_; }

 private:
  float rate_;
  Tensor cached_mask_;
};

/// 1-D batch normalization over the batch dimension.
///
/// gamma/beta are trainable parameters synchronized like any other; the
/// moving mean/variance are *stateful kernels* stored per virtual node in
/// the VnState (see nn/state.h and paper §4.1). During training the batch
/// statistics of the VN's own micro-batch are used (and the moving stats
/// updated); during inference the moving stats are read from the VnState.
class BatchNorm1d : public Layer {
 public:
  explicit BatchNorm1d(std::int64_t dim, float momentum = 0.9F, float eps = 1e-5F);

  void forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
  std::vector<const Tensor*> params() const override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> grads() override { return {&dgamma_, &dbeta_}; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<BatchNorm1d>(*this); }
  std::string name() const override { return "batch_norm"; }
  void set_layer_index(std::int32_t idx) override;

  /// VnState keys used by this layer instance.
  const std::string& mean_key() const { return mean_key_; }
  const std::string& var_key() const { return var_key_; }

  std::int64_t dim() const { return gamma_.size(); }

 private:
  float momentum_, eps_;
  Tensor gamma_, beta_, dgamma_, dbeta_;
  // VnState keys, derived from the layer index once (hot-path strings).
  std::string mean_key_, var_key_, var_init_key_;
  // Backward-pass caches and per-forward scratch (reused across steps).
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  std::vector<float> mean_scratch_, var_scratch_;
};

/// Layer normalization over the feature dimension (per example).
///
/// Unlike batch normalization, layer norm has no dependence on the batch
/// composition and no moving statistics — a transformer-style model built
/// on LayerNorm is mapping-invariant even under uneven heterogeneous
/// splits, without the per-VN-state machinery BN needs.
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(std::int64_t dim, float eps = 1e-5F);

  void forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
  std::vector<const Tensor*> params() const override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> grads() override { return {&dgamma_, &dbeta_}; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<LayerNorm>(*this); }
  std::string name() const override { return "layer_norm"; }

  std::int64_t dim() const { return gamma_.size(); }

 private:
  float eps_;
  Tensor gamma_, beta_, dgamma_, dbeta_;
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
};

}  // namespace vf
