#include "nn/optimizer.h"

#include <cmath>

#include "util/common.h"

namespace vf {

std::int64_t Optimizer::slot_bytes() const {
  std::int64_t n = 0;
  for (const Tensor& s : slots_) n += s.size() * static_cast<std::int64_t>(sizeof(float));
  return n;
}

void Optimizer::ensure_slots(Sequential& model, std::size_t per_param) {
  const auto params = model.params();
  const std::size_t want = params.size() * per_param;
  if (slots_.size() == want) return;
  check(slots_.empty(), "optimizer slot layout changed mid-training");
  slots_.reserve(want);
  for (std::size_t rep = 0; rep < per_param; ++rep) {
    for (const Tensor* p : params) slots_.emplace_back(p->shape());
  }
}

// ------------------------------------------------------------------ Sgd

Sgd::Sgd(float momentum, float weight_decay)
    : momentum_(momentum), weight_decay_(weight_decay) {
  check(momentum >= 0.0F && momentum < 1.0F, "momentum must be in [0, 1)");
  check(weight_decay >= 0.0F, "weight decay must be non-negative");
}

void Sgd::apply(Sequential& model, float lr) {
  const auto params = model.params();
  const auto grads = model.grads();
  check(params.size() == grads.size(), "params/grads mismatch");

  if (momentum_ == 0.0F) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      float* p = params[i]->data().data();
      const float* g = grads[i]->data().data();
      const std::int64_t n = params[i]->size();
      for (std::int64_t k = 0; k < n; ++k) {
        const float gk = g[k] + weight_decay_ * p[k];
        p[k] -= lr * gk;
      }
    }
    return;
  }

  ensure_slots(model, 1);
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->data().data();
    const float* g = grads[i]->data().data();
    float* v = slots_[i].data().data();
    const std::int64_t n = params[i]->size();
    for (std::int64_t k = 0; k < n; ++k) {
      const float gk = g[k] + weight_decay_ * p[k];
      v[k] = momentum_ * v[k] + gk;
      p[k] -= lr * v[k];
    }
  }
}

// ----------------------------------------------------------------- Lamb

Lamb::Lamb(float beta1, float beta2, float eps, float weight_decay)
    : beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {
  check(beta1 > 0.0F && beta1 < 1.0F, "beta1 must be in (0, 1)");
  check(beta2 > 0.0F && beta2 < 1.0F, "beta2 must be in (0, 1)");
  check(weight_decay >= 0.0F, "weight decay must be non-negative");
}

void Lamb::apply(Sequential& model, float lr) {
  const auto params = model.params();
  const auto grads = model.grads();
  check(params.size() == grads.size(), "params/grads mismatch");

  ensure_slots(model, 2);  // first half: m, second half: v
  ++t_;
  const float bc1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));

  for (std::size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->data().data();
    const float* g = grads[i]->data().data();
    float* m = slots_[i].data().data();
    float* v = slots_[params.size() + i].data().data();
    const std::int64_t n = params[i]->size();

    // Adam moments, then the LAMB per-tensor trust ratio: scale the update
    // so its norm is proportional to the parameter norm.
    double w_norm2 = 0.0, u_norm2 = 0.0;
    update_.resize(static_cast<std::size_t>(n));
    float* update = update_.data();
    for (std::int64_t k = 0; k < n; ++k) {
      m[k] = beta1_ * m[k] + (1.0F - beta1_) * g[k];
      v[k] = beta2_ * v[k] + (1.0F - beta2_) * g[k] * g[k];
      const float mhat = m[k] / bc1;
      const float vhat = v[k] / bc2;
      const float u = mhat / (std::sqrt(vhat) + eps_) + weight_decay_ * p[k];
      update[k] = u;
      w_norm2 += static_cast<double>(p[k]) * p[k];
      u_norm2 += static_cast<double>(u) * u;
    }
    const double w_norm = std::sqrt(w_norm2);
    const double u_norm = std::sqrt(u_norm2);
    // Trust ratio: ||w|| / ||u||, defaulting to 1 for zero norms.
    const float trust = (w_norm > 0.0 && u_norm > 0.0)
                            ? static_cast<float>(w_norm / u_norm)
                            : 1.0F;
    for (std::int64_t k = 0; k < n; ++k) p[k] -= lr * trust * update[k];
  }
}

// ----------------------------------------------------------------- Adam

Adam::Adam(float beta1, float beta2, float eps, float weight_decay)
    : beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {
  check(beta1 > 0.0F && beta1 < 1.0F, "beta1 must be in (0, 1)");
  check(beta2 > 0.0F && beta2 < 1.0F, "beta2 must be in (0, 1)");
}

void Adam::apply(Sequential& model, float lr) {
  const auto params = model.params();
  const auto grads = model.grads();
  check(params.size() == grads.size(), "params/grads mismatch");

  ensure_slots(model, 2);  // first half: m, second half: v
  ++t_;
  const float bc1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));

  for (std::size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->data().data();
    const float* g = grads[i]->data().data();
    float* m = slots_[i].data().data();
    float* v = slots_[params.size() + i].data().data();
    const std::int64_t n = params[i]->size();
    for (std::int64_t k = 0; k < n; ++k) {
      const float gk = g[k] + weight_decay_ * p[k];
      m[k] = beta1_ * m[k] + (1.0F - beta1_) * gk;
      v[k] = beta2_ * v[k] + (1.0F - beta2_) * gk * gk;
      const float mhat = m[k] / bc1;
      const float vhat = v[k] / bc2;
      p[k] -= lr * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace vf
