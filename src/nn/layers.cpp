#include "nn/layers.h"

#include <cmath>

#include "util/common.h"

namespace vf {

Tensor Layer::forward(const Tensor& x, const ExecContext& ctx) {
  Tensor y;
  forward_into(x, y, ctx);
  return y;
}

Tensor Layer::backward(const Tensor& grad_out) {
  Tensor gx;
  backward_into(grad_out, gx);
  return gx;
}

void Layer::zero_grad() {
  for (Tensor* g : grads()) g->fill(0.0F);
}

std::int64_t Layer::param_count() const {
  std::int64_t n = 0;
  for (const Tensor* p : params()) n += p->size();
  return n;
}

// ---------------------------------------------------------------- Dense

Dense::Dense(std::int64_t in_dim, std::int64_t out_dim, CounterRng& rng)
    : w_(Tensor::randn({in_dim, out_dim}, rng,
                       std::sqrt(2.0F / static_cast<float>(in_dim)))),
      b_(Tensor({out_dim})),
      dw_(Tensor({in_dim, out_dim})),
      db_(Tensor({out_dim})) {
  check(in_dim > 0 && out_dim > 0, "Dense dimensions must be positive");
}

void Dense::forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) {
  check(x.rank() == 2 && x.cols() == w_.rows(), "Dense: input shape mismatch");
  // The backward stash tracks the *training* forward it serves (eval
  // forwards between a training forward and its backward — the engine's
  // eval stripes borrow training replicas — must not redirect backward's
  // scratch into another arena).
  if (ctx.training) {
    cached_input_ = x;
    bw_ws_ = ctx.ws;
    bw_vn_ = ctx.vn_id;
  }
  x.matmul_into(w_, y);
  const std::int64_t n = y.rows(), d = y.cols();
  const float* b = b_.data().data();
  float* yp = y.data().data();
  for (std::int64_t i = 0; i < n; ++i, yp += d)
    for (std::int64_t j = 0; j < d; ++j) yp[j] += b[j];
}

void Dense::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  check(!cached_input_.empty(), "Dense::backward before forward");
  // Parameter gradients are formed in a zero-based temporary and then
  // added, so accumulation across multiple backwards (gradient
  // accumulation, pipelining) keeps the historical addition order.
  Tensor& dw_tmp = bw_ws_ != nullptr ? bw_ws_->acquire(bw_vn_, ws_tag(0)) : dw_tmp_;
  Tensor& db_tmp = bw_ws_ != nullptr ? bw_ws_->acquire(bw_vn_, ws_tag(1)) : db_tmp_;
  cached_input_.matmul_transpose_lhs_into(grad_out, dw_tmp);
  dw_.add_(dw_tmp);
  grad_out.column_sums_into(db_tmp);
  db_.add_(db_tmp);
  grad_out.matmul_transpose_rhs_into(w_, grad_in);
}

// ----------------------------------------------------------------- Relu

void Relu::forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) {
  check(&y != &x, "Relu: y must not alias x");
  if (ctx.training) cached_input_ = x;
  y.ensure_shape(x.shape());
  const float* in = x.data().data();
  float* out = y.data().data();
  const std::size_t n = x.data().size();
  for (std::size_t i = 0; i < n; ++i) out[i] = in[i] < 0.0F ? 0.0F : in[i];
}

void Relu::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  check(!cached_input_.empty(), "Relu::backward before forward");
  check_same_shape(grad_out, cached_input_, "Relu::backward");
  check(&grad_in != &grad_out, "Relu: grad_in must not alias grad_out");
  grad_in.ensure_shape(grad_out.shape());
  const float* in = cached_input_.data().data();
  const float* g = grad_out.data().data();
  float* gx = grad_in.data().data();
  const std::size_t n = grad_out.data().size();
  for (std::size_t i = 0; i < n; ++i) gx[i] = in[i] <= 0.0F ? 0.0F : g[i];
}

// ----------------------------------------------------------------- Tanh

void Tanh::forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) {
  check(&y != &x, "Tanh: y must not alias x");
  y.ensure_shape(x.shape());
  const float* in = x.data().data();
  float* out = y.data().data();
  const std::size_t n = x.data().size();
  for (std::size_t i = 0; i < n; ++i) out[i] = std::tanh(in[i]);
  if (ctx.training) cached_output_ = y;
}

void Tanh::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  check(!cached_output_.empty(), "Tanh::backward before forward");
  check(&grad_in != &grad_out, "Tanh: grad_in must not alias grad_out");
  grad_in.ensure_shape(grad_out.shape());
  const float* out = cached_output_.data().data();
  const float* g = grad_out.data().data();
  float* gx = grad_in.data().data();
  const std::size_t n = grad_out.data().size();
  for (std::size_t i = 0; i < n; ++i) gx[i] = g[i] * (1.0F - out[i] * out[i]);
}

// -------------------------------------------------------------- Dropout

Dropout::Dropout(float rate) : rate_(rate) {
  check(rate >= 0.0F && rate < 1.0F, "dropout rate must be in [0, 1)");
}

void Dropout::forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) {
  check(&y != &x, "Dropout: y must not alias x");
  if (!ctx.training || rate_ == 0.0F) {
    y = x;
    return;
  }
  // Mask stream keyed purely by logical identifiers -> mapping-invariant.
  const std::uint64_t stream =
      derive_seed(static_cast<std::uint64_t>(layer_index_) + 1,
                  (static_cast<std::uint64_t>(ctx.step) << 20) ^
                      static_cast<std::uint64_t>(ctx.vn_id));
  CounterRng rng(ctx.seed, stream);
  cached_mask_.ensure_shape(x.shape());
  const float keep = 1.0F - rate_;
  float* m = cached_mask_.data().data();
  const std::size_t n = cached_mask_.data().size();
  for (std::size_t i = 0; i < n; ++i)
    m[i] = rng.next_double() < keep ? 1.0F / keep : 0.0F;
  x.mul_into(cached_mask_, y);
}

void Dropout::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  if (cached_mask_.empty()) {  // eval mode or rate 0
    grad_in = grad_out;
    return;
  }
  grad_out.mul_into(cached_mask_, grad_in);
}

// ---------------------------------------------------------- BatchNorm1d

BatchNorm1d::BatchNorm1d(std::int64_t dim, float momentum, float eps)
    : momentum_(momentum),
      eps_(eps),
      gamma_(Tensor({dim})),
      beta_(Tensor({dim})),
      dgamma_(Tensor({dim})),
      dbeta_(Tensor({dim})) {
  check(dim > 0, "BatchNorm1d dim must be positive");
  check(momentum > 0.0F && momentum < 1.0F, "BatchNorm1d momentum must be in (0, 1)");
  gamma_.fill(1.0F);
  set_layer_index(layer_index_);  // derive keys for the default index too
}

void BatchNorm1d::set_layer_index(std::int32_t idx) {
  layer_index_ = idx;
  const std::string base = "bn" + std::to_string(layer_index_);
  mean_key_ = base + "/moving_mean";
  var_key_ = base + "/moving_var";
  var_init_key_ = var_key_ + "/init";
}

void BatchNorm1d::forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) {
  check(&y != &x, "BatchNorm1d: y must not alias x");
  const std::int64_t n = x.rows(), d = x.cols();
  check(d == dim(), "BatchNorm1d: feature dim mismatch");

  mean_scratch_.assign(static_cast<std::size_t>(d), 0.0F);
  var_scratch_.assign(static_cast<std::size_t>(d), 0.0F);
  float* mean = mean_scratch_.data();
  float* var = var_scratch_.data();
  const float* xp = x.data().data();

  if (ctx.training) {
    check(n > 0, "BatchNorm1d training forward needs a non-empty batch");
    // Row-major two-pass moments; each column still accumulates over rows
    // in ascending order, so the sums match the per-column loops bit for
    // bit.
    const float* p = xp;
    for (std::int64_t i = 0; i < n; ++i, p += d)
      for (std::int64_t j = 0; j < d; ++j) mean[j] += p[j];
    for (std::int64_t j = 0; j < d; ++j) mean[j] /= static_cast<float>(n);
    p = xp;
    for (std::int64_t i = 0; i < n; ++i, p += d) {
      for (std::int64_t j = 0; j < d; ++j) {
        const float c = p[j] - mean[j];
        var[j] += c * c;
      }
    }
    for (std::int64_t j = 0; j < d; ++j) var[j] /= static_cast<float>(n);
    if (ctx.state != nullptr) {
      // Moving stats live in the *virtual node's* state, initialized to
      // mean 0 / var 1 on first touch.
      Tensor& mm = ctx.state->slot(mean_key_, {d});
      Tensor& mv = ctx.state->slot(var_key_, {d});
      if (!ctx.state->has(var_init_key_)) {
        mv.fill(1.0F);
        ctx.state->slot(var_init_key_, {1}).fill(1.0F);
      }
      float* mmp = mm.data().data();
      float* mvp = mv.data().data();
      for (std::int64_t j = 0; j < d; ++j) {
        mmp[j] = momentum_ * mmp[j] + (1.0F - momentum_) * mean[j];
        mvp[j] = momentum_ * mvp[j] + (1.0F - momentum_) * var[j];
      }
    }
  } else {
    // Inference: use the VN's moving statistics (mean 0 / var 1 if absent,
    // which models the "reset state" failure mode of unmigrated workers).
    for (std::int64_t j = 0; j < d; ++j) {
      mean[j] = 0.0F;
      var[j] = 1.0F;
    }
    if (ctx.state != nullptr && ctx.state->has(mean_key_)) {
      const Tensor& mm = ctx.state->get(mean_key_);
      const Tensor& mv = ctx.state->get(var_key_);
      const float* mmp = mm.data().data();
      const float* mvp = mv.data().data();
      for (std::int64_t j = 0; j < d; ++j) {
        mean[j] = mmp[j];
        var[j] = mvp[j];
      }
    }
  }

  y.ensure_shape({n, d});
  cached_inv_std_.assign(static_cast<std::size_t>(d), 0.0F);
  for (std::int64_t j = 0; j < d; ++j)
    cached_inv_std_[static_cast<std::size_t>(j)] = 1.0F / std::sqrt(var[j] + eps_);
  const float* inv_std = cached_inv_std_.data();
  if (ctx.training) cached_xhat_.ensure_shape({n, d});
  const float* gp = gamma_.data().data();
  const float* bp = beta_.data().data();
  float* yp = y.data().data();
  float* xh = ctx.training ? cached_xhat_.data().data() : nullptr;
  const float* p = xp;
  for (std::int64_t i = 0; i < n; ++i, p += d, yp += d) {
    for (std::int64_t j = 0; j < d; ++j) {
      const float xhat = (p[j] - mean[j]) * inv_std[j];
      if (xh != nullptr) xh[i * d + j] = xhat;
      yp[j] = gp[j] * xhat + bp[j];
    }
  }
}

void BatchNorm1d::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  check(!cached_xhat_.empty(), "BatchNorm1d::backward before training forward");
  const std::int64_t n = grad_out.rows(), d = grad_out.cols();
  check_same_shape(grad_out, cached_xhat_, "BatchNorm1d::backward");
  check(&grad_in != &grad_out, "BatchNorm1d: grad_in must not alias grad_out");

  grad_in.ensure_shape({n, d});
  // Per-column sums, accumulated row-major (ascending row order per
  // column, as the per-column loops did). mean/var scratch is dead after
  // forward, so reuse it for the two sum vectors.
  mean_scratch_.assign(static_cast<std::size_t>(d), 0.0F);
  var_scratch_.assign(static_cast<std::size_t>(d), 0.0F);
  float* sum_g = mean_scratch_.data();
  float* sum_gx = var_scratch_.data();
  const float* g = grad_out.data().data();
  const float* xh = cached_xhat_.data().data();
  {
    const float* gr = g;
    const float* xr = xh;
    for (std::int64_t i = 0; i < n; ++i, gr += d, xr += d) {
      for (std::int64_t j = 0; j < d; ++j) {
        sum_g[j] += gr[j];
        sum_gx[j] += gr[j] * xr[j];
      }
    }
  }
  float* dbp = dbeta_.data().data();
  float* dgp = dgamma_.data().data();
  for (std::int64_t j = 0; j < d; ++j) {
    dbp[j] += sum_g[j];
    dgp[j] += sum_gx[j];
  }
  const float* inv_std = cached_inv_std_.data();
  const float* gp = gamma_.data().data();
  const float inv_n = 1.0F / static_cast<float>(n);
  float* gx = grad_in.data().data();
  const float* gr = g;
  const float* xr = xh;
  for (std::int64_t i = 0; i < n; ++i, gr += d, xr += d, gx += d) {
    for (std::int64_t j = 0; j < d; ++j) {
      gx[j] = gp[j] * inv_std[j] *
              (gr[j] - inv_n * sum_g[j] - xr[j] * inv_n * sum_gx[j]);
    }
  }
}

// ------------------------------------------------------------ LayerNorm

LayerNorm::LayerNorm(std::int64_t dim, float eps)
    : eps_(eps),
      gamma_(Tensor({dim})),
      beta_(Tensor({dim})),
      dgamma_(Tensor({dim})),
      dbeta_(Tensor({dim})) {
  check(dim > 0, "LayerNorm dim must be positive");
  gamma_.fill(1.0F);
}

void LayerNorm::forward_into(const Tensor& x, Tensor& y, const ExecContext& ctx) {
  check(&y != &x, "LayerNorm: y must not alias x");
  const std::int64_t n = x.rows(), d = x.cols();
  check(d == dim(), "LayerNorm: feature dim mismatch");
  y.ensure_shape({n, d});
  if (ctx.training) {
    cached_xhat_.ensure_shape({n, d});
    cached_inv_std_.assign(static_cast<std::size_t>(n), 0.0F);
  }
  const float* gp = gamma_.data().data();
  const float* bp = beta_.data().data();
  const float* p = x.data().data();
  float* yp = y.data().data();
  float* xh = ctx.training ? cached_xhat_.data().data() : nullptr;
  for (std::int64_t i = 0; i < n; ++i, p += d, yp += d) {
    float mean = 0.0F;
    for (std::int64_t j = 0; j < d; ++j) mean += p[j];
    mean /= static_cast<float>(d);
    float var = 0.0F;
    for (std::int64_t j = 0; j < d; ++j) {
      const float c = p[j] - mean;
      var += c * c;
    }
    var /= static_cast<float>(d);
    const float inv_std = 1.0F / std::sqrt(var + eps_);
    if (ctx.training) cached_inv_std_[static_cast<std::size_t>(i)] = inv_std;
    for (std::int64_t j = 0; j < d; ++j) {
      const float xhat = (p[j] - mean) * inv_std;
      if (xh != nullptr) xh[i * d + j] = xhat;
      yp[j] = gp[j] * xhat + bp[j];
    }
  }
}

void LayerNorm::backward_into(const Tensor& grad_out, Tensor& grad_in) {
  check(!cached_xhat_.empty(), "LayerNorm::backward before training forward");
  const std::int64_t n = grad_out.rows(), d = grad_out.cols();
  check_same_shape(grad_out, cached_xhat_, "LayerNorm::backward");
  check(&grad_in != &grad_out, "LayerNorm: grad_in must not alias grad_out");

  grad_in.ensure_shape({n, d});
  const float inv_d = 1.0F / static_cast<float>(d);
  const float* gp = gamma_.data().data();
  float* dgp = dgamma_.data().data();
  float* dbp = dbeta_.data().data();
  const float* gr = grad_out.data().data();
  const float* xr = cached_xhat_.data().data();
  float* gx = grad_in.data().data();
  for (std::int64_t i = 0; i < n; ++i, gr += d, xr += d, gx += d) {
    float sum_g = 0.0F, sum_gx = 0.0F;
    for (std::int64_t j = 0; j < d; ++j) {
      const float gy = gr[j] * gp[j];
      sum_g += gy;
      sum_gx += gy * xr[j];
    }
    const float inv_std = cached_inv_std_[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < d; ++j) {
      const float gy = gr[j] * gp[j];
      gx[j] = inv_std * (gy - inv_d * sum_g - xr[j] * inv_d * sum_gx);
      dgp[j] += gr[j] * xr[j];
      dbp[j] += gr[j];
    }
  }
}

}  // namespace vf
