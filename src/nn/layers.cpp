#include "nn/layers.h"

#include <cmath>

#include "util/common.h"

namespace vf {

void Layer::zero_grad() {
  for (Tensor* g : grads()) g->fill(0.0F);
}

std::int64_t Layer::param_count() const {
  std::int64_t n = 0;
  for (const Tensor* p : params()) n += p->size();
  return n;
}

// ---------------------------------------------------------------- Dense

Dense::Dense(std::int64_t in_dim, std::int64_t out_dim, CounterRng& rng)
    : w_(Tensor::randn({in_dim, out_dim}, rng,
                       std::sqrt(2.0F / static_cast<float>(in_dim)))),
      b_(Tensor({out_dim})),
      dw_(Tensor({in_dim, out_dim})),
      db_(Tensor({out_dim})) {
  check(in_dim > 0 && out_dim > 0, "Dense dimensions must be positive");
}

Tensor Dense::forward(const Tensor& x, const ExecContext& ctx) {
  check(x.rank() == 2 && x.cols() == w_.rows(), "Dense: input shape mismatch");
  if (ctx.training) cached_input_ = x;
  Tensor y = x.matmul(w_);
  for (std::int64_t i = 0; i < y.rows(); ++i)
    for (std::int64_t j = 0; j < y.cols(); ++j) y.at(i, j) += b_.at(j);
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  check(!cached_input_.empty(), "Dense::backward before forward");
  dw_.add_(cached_input_.matmul_transpose_lhs(grad_out));
  db_.add_(grad_out.column_sums());
  return grad_out.matmul_transpose_rhs(w_);
}

// ----------------------------------------------------------------- Relu

Tensor Relu::forward(const Tensor& x, const ExecContext& ctx) {
  if (ctx.training) cached_input_ = x;
  Tensor y = x;
  for (float& v : y.data())
    if (v < 0.0F) v = 0.0F;
  return y;
}

Tensor Relu::backward(const Tensor& grad_out) {
  check(!cached_input_.empty(), "Relu::backward before forward");
  check_same_shape(grad_out, cached_input_, "Relu::backward");
  Tensor gx = grad_out;
  auto in = cached_input_.data();
  auto g = gx.data();
  for (std::size_t i = 0; i < g.size(); ++i)
    if (in[i] <= 0.0F) g[i] = 0.0F;
  return gx;
}

// ----------------------------------------------------------------- Tanh

Tensor Tanh::forward(const Tensor& x, const ExecContext& ctx) {
  Tensor y = x;
  for (float& v : y.data()) v = std::tanh(v);
  if (ctx.training) cached_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  check(!cached_output_.empty(), "Tanh::backward before forward");
  Tensor gx = grad_out;
  auto out = cached_output_.data();
  auto g = gx.data();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= 1.0F - out[i] * out[i];
  return gx;
}

// -------------------------------------------------------------- Dropout

Dropout::Dropout(float rate) : rate_(rate) {
  check(rate >= 0.0F && rate < 1.0F, "dropout rate must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& x, const ExecContext& ctx) {
  if (!ctx.training || rate_ == 0.0F) return x;
  // Mask stream keyed purely by logical identifiers -> mapping-invariant.
  const std::uint64_t stream =
      derive_seed(static_cast<std::uint64_t>(layer_index_) + 1,
                  (static_cast<std::uint64_t>(ctx.step) << 20) ^
                      static_cast<std::uint64_t>(ctx.vn_id));
  CounterRng rng(ctx.seed, stream);
  cached_mask_ = Tensor(x.shape());
  const float keep = 1.0F - rate_;
  auto m = cached_mask_.data();
  for (std::size_t i = 0; i < m.size(); ++i)
    m[i] = rng.next_double() < keep ? 1.0F / keep : 0.0F;
  return x.mul(cached_mask_);
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (cached_mask_.empty()) return grad_out;  // eval mode or rate 0
  return grad_out.mul(cached_mask_);
}

// ---------------------------------------------------------- BatchNorm1d

BatchNorm1d::BatchNorm1d(std::int64_t dim, float momentum, float eps)
    : momentum_(momentum),
      eps_(eps),
      gamma_(Tensor({dim})),
      beta_(Tensor({dim})),
      dgamma_(Tensor({dim})),
      dbeta_(Tensor({dim})) {
  check(dim > 0, "BatchNorm1d dim must be positive");
  check(momentum > 0.0F && momentum < 1.0F, "BatchNorm1d momentum must be in (0, 1)");
  gamma_.fill(1.0F);
}

std::string BatchNorm1d::mean_key() const {
  return "bn" + std::to_string(layer_index_) + "/moving_mean";
}
std::string BatchNorm1d::var_key() const {
  return "bn" + std::to_string(layer_index_) + "/moving_var";
}

Tensor BatchNorm1d::forward(const Tensor& x, const ExecContext& ctx) {
  const std::int64_t n = x.rows(), d = x.cols();
  check(d == dim(), "BatchNorm1d: feature dim mismatch");

  std::vector<float> mean(static_cast<std::size_t>(d), 0.0F);
  std::vector<float> var(static_cast<std::size_t>(d), 0.0F);

  if (ctx.training) {
    check(n > 0, "BatchNorm1d training forward needs a non-empty batch");
    for (std::int64_t j = 0; j < d; ++j) {
      float m = 0.0F;
      for (std::int64_t i = 0; i < n; ++i) m += x.at(i, j);
      m /= static_cast<float>(n);
      float v = 0.0F;
      for (std::int64_t i = 0; i < n; ++i) {
        const float c = x.at(i, j) - m;
        v += c * c;
      }
      v /= static_cast<float>(n);
      mean[static_cast<std::size_t>(j)] = m;
      var[static_cast<std::size_t>(j)] = v;
    }
    if (ctx.state != nullptr) {
      // Moving stats live in the *virtual node's* state, initialized to
      // mean 0 / var 1 on first touch.
      Tensor& mm = ctx.state->slot(mean_key(), {d});
      Tensor& mv = ctx.state->slot(var_key(), {d});
      if (!ctx.state->has(var_key() + "/init")) {
        mv.fill(1.0F);
        ctx.state->slot(var_key() + "/init", {1}).fill(1.0F);
      }
      for (std::int64_t j = 0; j < d; ++j) {
        mm.at(j) = momentum_ * mm.at(j) + (1.0F - momentum_) * mean[static_cast<std::size_t>(j)];
        mv.at(j) = momentum_ * mv.at(j) + (1.0F - momentum_) * var[static_cast<std::size_t>(j)];
      }
    }
  } else {
    // Inference: use the VN's moving statistics (mean 0 / var 1 if absent,
    // which models the "reset state" failure mode of unmigrated workers).
    for (std::int64_t j = 0; j < d; ++j) {
      mean[static_cast<std::size_t>(j)] = 0.0F;
      var[static_cast<std::size_t>(j)] = 1.0F;
    }
    if (ctx.state != nullptr && ctx.state->has(mean_key())) {
      const Tensor& mm = ctx.state->get(mean_key());
      const Tensor& mv = ctx.state->get(var_key());
      for (std::int64_t j = 0; j < d; ++j) {
        mean[static_cast<std::size_t>(j)] = mm.at(j);
        var[static_cast<std::size_t>(j)] = mv.at(j);
      }
    }
  }

  Tensor y({n, d});
  cached_inv_std_.assign(static_cast<std::size_t>(d), 0.0F);
  for (std::int64_t j = 0; j < d; ++j)
    cached_inv_std_[static_cast<std::size_t>(j)] =
        1.0F / std::sqrt(var[static_cast<std::size_t>(j)] + eps_);
  if (ctx.training) cached_xhat_ = Tensor({n, d});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      const float xhat = (x.at(i, j) - mean[static_cast<std::size_t>(j)]) *
                         cached_inv_std_[static_cast<std::size_t>(j)];
      if (ctx.training) cached_xhat_.at(i, j) = xhat;
      y.at(i, j) = gamma_.at(j) * xhat + beta_.at(j);
    }
  }
  return y;
}

Tensor BatchNorm1d::backward(const Tensor& grad_out) {
  check(!cached_xhat_.empty(), "BatchNorm1d::backward before training forward");
  const std::int64_t n = grad_out.rows(), d = grad_out.cols();
  check_same_shape(grad_out, cached_xhat_, "BatchNorm1d::backward");

  Tensor gx({n, d});
  for (std::int64_t j = 0; j < d; ++j) {
    float sum_g = 0.0F, sum_gx = 0.0F;
    for (std::int64_t i = 0; i < n; ++i) {
      sum_g += grad_out.at(i, j);
      sum_gx += grad_out.at(i, j) * cached_xhat_.at(i, j);
    }
    dbeta_.at(j) += sum_g;
    dgamma_.at(j) += sum_gx;
    const float inv_std = cached_inv_std_[static_cast<std::size_t>(j)];
    const float g = gamma_.at(j);
    const float inv_n = 1.0F / static_cast<float>(n);
    for (std::int64_t i = 0; i < n; ++i) {
      gx.at(i, j) = g * inv_std *
                    (grad_out.at(i, j) - inv_n * sum_g -
                     cached_xhat_.at(i, j) * inv_n * sum_gx);
    }
  }
  return gx;
}

// ------------------------------------------------------------ LayerNorm

LayerNorm::LayerNorm(std::int64_t dim, float eps)
    : eps_(eps),
      gamma_(Tensor({dim})),
      beta_(Tensor({dim})),
      dgamma_(Tensor({dim})),
      dbeta_(Tensor({dim})) {
  check(dim > 0, "LayerNorm dim must be positive");
  gamma_.fill(1.0F);
}

Tensor LayerNorm::forward(const Tensor& x, const ExecContext& ctx) {
  const std::int64_t n = x.rows(), d = x.cols();
  check(d == dim(), "LayerNorm: feature dim mismatch");
  Tensor y({n, d});
  if (ctx.training) {
    cached_xhat_ = Tensor({n, d});
    cached_inv_std_.assign(static_cast<std::size_t>(n), 0.0F);
  }
  for (std::int64_t i = 0; i < n; ++i) {
    float mean = 0.0F;
    for (std::int64_t j = 0; j < d; ++j) mean += x.at(i, j);
    mean /= static_cast<float>(d);
    float var = 0.0F;
    for (std::int64_t j = 0; j < d; ++j) {
      const float c = x.at(i, j) - mean;
      var += c * c;
    }
    var /= static_cast<float>(d);
    const float inv_std = 1.0F / std::sqrt(var + eps_);
    if (ctx.training) cached_inv_std_[static_cast<std::size_t>(i)] = inv_std;
    for (std::int64_t j = 0; j < d; ++j) {
      const float xhat = (x.at(i, j) - mean) * inv_std;
      if (ctx.training) cached_xhat_.at(i, j) = xhat;
      y.at(i, j) = gamma_.at(j) * xhat + beta_.at(j);
    }
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  check(!cached_xhat_.empty(), "LayerNorm::backward before training forward");
  const std::int64_t n = grad_out.rows(), d = grad_out.cols();
  check_same_shape(grad_out, cached_xhat_, "LayerNorm::backward");

  Tensor gx({n, d});
  const float inv_d = 1.0F / static_cast<float>(d);
  for (std::int64_t i = 0; i < n; ++i) {
    float sum_g = 0.0F, sum_gx = 0.0F;
    for (std::int64_t j = 0; j < d; ++j) {
      const float gy = grad_out.at(i, j) * gamma_.at(j);
      sum_g += gy;
      sum_gx += gy * cached_xhat_.at(i, j);
    }
    const float inv_std = cached_inv_std_[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < d; ++j) {
      const float gy = grad_out.at(i, j) * gamma_.at(j);
      gx.at(i, j) = inv_std * (gy - inv_d * sum_g -
                               cached_xhat_.at(i, j) * inv_d * sum_gx);
      dgamma_.at(j) += grad_out.at(i, j) * cached_xhat_.at(i, j);
      dbeta_.at(j) += grad_out.at(i, j);
    }
  }
  return gx;
}

}  // namespace vf
