// Optimizers. Slots (momentum buffers, Adam moments) are exposed so the
// elastic controller can migrate them alongside model parameters — a new
// worker bootstrapped without optimizer slots would silently restart
// momentum from zero, which is exactly the class of hidden state the paper
// warns about in §4.1.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/model.h"

namespace vf {

/// Base optimizer interface. `apply` consumes the gradients currently
/// accumulated in the model (already averaged over the global batch) and
/// updates parameters in place.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  Optimizer() = default;
  Optimizer(const Optimizer&) = default;
  Optimizer& operator=(const Optimizer&) = default;

  virtual void apply(Sequential& model, float lr) = 0;
  virtual std::unique_ptr<Optimizer> clone() const = 0;
  virtual std::string name() const = 0;

  /// Flattened view of all optimizer slots (for state migration).
  virtual std::vector<Tensor>& slots() { return slots_; }
  virtual const std::vector<Tensor>& slots() const { return slots_; }

  /// Total slot bytes (migration-cost accounting).
  std::int64_t slot_bytes() const;

  /// Step counter for optimizers with time-dependent state (Adam's bias
  /// correction). Checkpoint/restore round-trips it; plain SGD ignores it.
  virtual std::int64_t counter() const { return 0; }
  virtual void set_counter(std::int64_t /*value*/) {}

 protected:
  /// Lazily sizes `slots_` to match the model's parameter list.
  void ensure_slots(Sequential& model, std::size_t per_param);

  std::vector<Tensor> slots_;
};

/// SGD with optional momentum and decoupled weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float momentum = 0.0F, float weight_decay = 0.0F);

  void apply(Sequential& model, float lr) override;
  std::unique_ptr<Optimizer> clone() const override { return std::make_unique<Sgd>(*this); }
  std::string name() const override { return "sgd"; }

  float momentum() const { return momentum_; }

 private:
  float momentum_, weight_decay_;
};

/// LAMB (You et al.) — layer-wise adaptive rates on top of Adam moments.
/// This is the optimizer the paper's large-batch BERT references [57] use;
/// its per-layer trust-ratio computation is also why transformer parameter
/// updates are expensive (the Fig 17 throughput lever).
class Lamb : public Optimizer {
 public:
  explicit Lamb(float beta1 = 0.9F, float beta2 = 0.999F, float eps = 1e-6F,
                float weight_decay = 0.01F);

  void apply(Sequential& model, float lr) override;
  std::unique_ptr<Optimizer> clone() const override { return std::make_unique<Lamb>(*this); }
  std::string name() const override { return "lamb"; }
  std::int64_t counter() const override { return t_; }
  void set_counter(std::int64_t value) override { t_ = value; }

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  /// Per-apply update scratch, reused across steps (hot-path allocation
  /// discipline; the trust ratio needs the whole update before scaling).
  std::vector<float> update_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(float beta1 = 0.9F, float beta2 = 0.999F, float eps = 1e-8F,
                float weight_decay = 0.0F);

  void apply(Sequential& model, float lr) override;
  std::unique_ptr<Optimizer> clone() const override { return std::make_unique<Adam>(*this); }
  std::string name() const override { return "adam"; }
  std::int64_t counter() const override { return t_; }
  void set_counter(std::int64_t value) override { t_ = value; }

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
};

}  // namespace vf
