#include "nn/loss.h"

#include <cmath>

#include "util/common.h"

namespace vf {

void softmax_cross_entropy_into(const Tensor& logits,
                                const std::vector<std::int64_t>& labels,
                                LossResult& out) {
  check(logits.rank() == 2, "softmax_cross_entropy expects rank-2 logits");
  const std::int64_t n = logits.rows(), c = logits.cols();
  check(static_cast<std::int64_t>(labels.size()) == n,
        "softmax_cross_entropy: label count mismatch");

  out.grad_logits.ensure_shape({n, c});
  out.loss_sum = 0.0;
  out.correct = 0;
  out.count = n;

  const float* lp = logits.data().data();
  float* gp = out.grad_logits.data().data();
  for (std::int64_t i = 0; i < n; ++i, lp += c, gp += c) {
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    check_index(y, c, "class label");

    // Numerically stable log-softmax.
    float mx = lp[0];
    for (std::int64_t j = 1; j < c; ++j) mx = std::max(mx, lp[j]);
    double z = 0.0;
    for (std::int64_t j = 0; j < c; ++j) z += std::exp(static_cast<double>(lp[j] - mx));
    const double log_z = std::log(z) + mx;

    out.loss_sum += log_z - lp[y];

    std::int64_t best = 0;
    float best_v = lp[0];
    for (std::int64_t j = 1; j < c; ++j) {
      if (lp[j] > best_v) {
        best_v = lp[j];
        best = j;
      }
    }
    if (best == y) ++out.correct;

    for (std::int64_t j = 0; j < c; ++j) {
      const double p = std::exp(static_cast<double>(lp[j]) - log_z);
      gp[j] = static_cast<float>(p) - (j == y ? 1.0F : 0.0F);
    }
  }
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  LossResult out;
  softmax_cross_entropy_into(logits, labels, out);
  return out;
}

double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  check(logits.rows() == static_cast<std::int64_t>(labels.size()),
        "accuracy: label count mismatch");
  check(logits.rows() > 0, "accuracy of empty batch");
  const auto preds = logits.row_argmax();
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (preds[i] == labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace vf
