#include "nn/state.h"

#include "util/common.h"

namespace vf {

Tensor& VnState::slot(const std::string& key, const std::vector<std::int64_t>& shape) {
  auto it = slots_.find(key);
  if (it == slots_.end()) {
    it = slots_.emplace(key, Tensor(shape)).first;
  } else {
    check(it->second.shape() == shape, "VnState slot '" + key + "' shape mismatch");
  }
  return it->second;
}

const Tensor& VnState::get(const std::string& key) const {
  auto it = slots_.find(key);
  check(it != slots_.end(), "VnState slot '" + key + "' not found");
  return it->second;
}

void VnState::put(const std::string& key, Tensor value) {
  slots_[key] = std::move(value);
}

std::vector<std::string> VnState::keys() const {
  std::vector<std::string> out;
  out.reserve(slots_.size());
  for (const auto& [k, v] : slots_) out.push_back(k);
  return out;
}

std::int64_t VnState::total_bytes() const {
  std::int64_t bytes = 0;
  for (const auto& [k, v] : slots_) bytes += v.size() * static_cast<std::int64_t>(sizeof(float));
  return bytes;
}

}  // namespace vf
