// Softmax cross-entropy loss with integer class labels.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace vf {

/// Result of a loss evaluation over one micro-batch.
struct LossResult {
  double loss_sum = 0.0;    ///< summed (not averaged) NLL over the batch
  Tensor grad_logits;       ///< d(sum loss)/d(logits), same shape as logits
  std::int64_t correct = 0; ///< argmax matches label
  std::int64_t count = 0;   ///< number of examples
};

/// Computes softmax cross-entropy over `logits` [n x classes] against
/// `labels` (size n). Gradients are w.r.t. the *sum* of per-example losses;
/// the caller divides by the relevant batch size. Keeping sums (rather than
/// means) at this level is what makes the weighted heterogeneous gradient
/// synchronization (§5.2) exact: sum(all) / B is independent of how
/// examples were partitioned.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels);

/// Allocation-free form: scalars are reset and `out.grad_logits` is
/// reshaped in place (reusing its buffer), so a per-VN LossResult slot can
/// be recycled step after step. Identical arithmetic to the by-value form.
void softmax_cross_entropy_into(const Tensor& logits,
                                const std::vector<std::int64_t>& labels,
                                LossResult& out);

/// Forward-only evaluation convenience: accuracy of logits vs labels.
double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels);

}  // namespace vf
