// VirtualFlow: decoupling deep-learning models from the underlying
// hardware via virtual node processing.
//
// Umbrella header exposing the full public API. Typical usage:
//
//   #include "virtualflow.h"
//
//   vf::ProxyTask task = vf::make_task("imagenet-sim", /*seed=*/42);
//   vf::TrainRecipe recipe = vf::make_recipe("imagenet-sim");
//   vf::Sequential model = vf::make_proxy_model("imagenet-sim", 42);
//
//   auto devices = vf::make_devices(vf::DeviceType::kV100, 4);
//   auto mapping = vf::VnMapping::even(/*total_vns=*/32, /*devices=*/4,
//                                      recipe.global_batch);
//   vf::VirtualFlowEngine engine(model, *recipe.optimizer, *recipe.schedule,
//                                *task.train, vf::model_profile("resnet50"),
//                                devices, mapping, {});
//   vf::TrainResult result = vf::train(engine, *task.val, recipe.epochs);
//
// Changing `devices` (count or type) while keeping `total_vns` fixed
// yields a bit-identical `result` — that is the library's core contract.
#pragma once

// Substrates.
#include "util/common.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "tensor/tensor.h"
#include "nn/layer.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"
#include "nn/state.h"
#include "data/batch.h"
#include "data/dataset.h"
#include "data/sharding.h"
#include "device/cost_model.h"
#include "device/memory_model.h"
#include "device/model_profile.h"
#include "device/spec.h"
#include "comm/comm.h"

// Core virtual-node engine.
#include "core/checkpoint.h"
#include "core/engine.h"
#include "core/mapping.h"
#include "core/pipeline.h"
#include "core/trainer.h"

// Heterogeneous training.
#include "profiler/profiler.h"
#include "solver/solver.h"

// Deterministic fault injection on the virtual clock.
#include "fault/fault.h"

// Runtime observability: metrics registry + Perfetto-compatible tracing.
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

// Deadline-aware inference serving on virtual nodes.
#include "serve/arrival.h"
#include "serve/batch_former.h"
#include "serve/colocation.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/server.h"
#include "serve/slo_tracker.h"
#include "serve/slot_ledger.h"
#include "serve/streaming.h"

// Cluster scheduling.
#include "sched/cluster.h"
#include "sched/elastic.h"
#include "sched/gavel.h"
#include "sched/job.h"
#include "sched/lease.h"
#include "sched/simulator.h"
#include "sched/throughput.h"
#include "sched/trace.h"
#include "sched/wfs.h"

// Paper workload catalog.
#include "workloads/profiles.h"
#include "workloads/tasks.h"
