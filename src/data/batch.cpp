#include "data/batch.h"

#include "util/common.h"

namespace vf {

EpochBatcher::EpochBatcher(const Dataset& dataset, std::uint64_t seed,
                           std::int64_t global_batch)
    : dataset_(dataset),
      seed_(seed),
      global_batch_(global_batch),
      n_batches_(vf::batches_per_epoch(dataset.size(), global_batch)) {}

void EpochBatcher::ensure_epoch(std::int64_t epoch) {
  if (epoch == cached_epoch_) return;
  perm_ = epoch_permutation(dataset_.size(), seed_, epoch);
  cached_epoch_ = epoch;
}

void EpochBatcher::indices_into(std::int64_t epoch, std::int64_t batch_in_epoch,
                                const std::vector<BatchSlice>& slices,
                                std::int64_t vn, std::vector<std::int64_t>& out) {
  check_index(batch_in_epoch, n_batches_, "batch in epoch");
  check_index(vn, static_cast<std::int64_t>(slices.size()), "virtual node");
  ensure_epoch(epoch);

  const BatchSlice& slice = slices[static_cast<std::size_t>(vn)];
  const std::int64_t base = batch_in_epoch * global_batch_ + slice.begin;
  check(base + slice.count <= dataset_.size(), "batch slice exceeds dataset");

  out.resize(static_cast<std::size_t>(slice.count));
  for (std::int64_t k = 0; k < slice.count; ++k)
    out[static_cast<std::size_t>(k)] = perm_[static_cast<std::size_t>(base + k)];
}

std::vector<std::int64_t> EpochBatcher::indices(std::int64_t epoch,
                                                std::int64_t batch_in_epoch,
                                                const std::vector<BatchSlice>& slices,
                                                std::int64_t vn) {
  std::vector<std::int64_t> out;
  indices_into(epoch, batch_in_epoch, slices, vn, out);
  return out;
}

void EpochBatcher::micro_batch_into(std::int64_t epoch, std::int64_t batch_in_epoch,
                                    const std::vector<BatchSlice>& slices,
                                    std::int64_t vn, MicroBatch& mb,
                                    std::vector<std::int64_t>& idx_scratch) {
  indices_into(epoch, batch_in_epoch, slices, vn, idx_scratch);
  dataset_.gather(idx_scratch, mb.features, mb.labels);
}

MicroBatch EpochBatcher::micro_batch(std::int64_t epoch, std::int64_t batch_in_epoch,
                                     const std::vector<BatchSlice>& slices,
                                     std::int64_t vn) {
  // The by-value form still materializes straight into the returned
  // buffers (reserve happens inside gather; the return is a move).
  MicroBatch mb;
  std::vector<std::int64_t> idx;
  micro_batch_into(epoch, batch_in_epoch, slices, vn, mb, idx);
  return mb;
}

void gather_micro_batch_into(const Dataset& dataset,
                             const std::vector<std::int64_t>& indices,
                             MicroBatch& out) {
  check(!indices.empty(), "gather_micro_batch needs at least one index");
  for (const std::int64_t i : indices) check_index(i, dataset.size(), "example");
  dataset.gather(indices, out.features, out.labels);
}

MicroBatch gather_micro_batch(const Dataset& dataset,
                              const std::vector<std::int64_t>& indices) {
  MicroBatch mb;
  gather_micro_batch_into(dataset, indices, mb);
  return mb;
}

MicroBatch materialize_all(const Dataset& dataset, std::int64_t limit) {
  const std::int64_t n = limit < 0 ? dataset.size() : std::min(limit, dataset.size());
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  MicroBatch mb;
  dataset.gather(idx, mb.features, mb.labels);
  return mb;
}

}  // namespace vf
