// Dataset abstraction and synthetic dataset generators.
//
// The paper trains on ImageNet and GLUE; neither is available offline, so
// we substitute deterministic synthetic classification tasks (see
// DESIGN.md §1). Each dataset is a pure function of its seed: example i is
// generated on demand and is identical across processes, devices, and
// virtual-node mappings — the property the reproducibility experiments
// need from the data pipeline.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace vf {

/// One labelled example.
struct Example {
  std::vector<float> features;
  std::int64_t label = 0;
};

/// Abstract dataset: fixed size, feature dimension, and class count.
class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual std::int64_t size() const = 0;
  virtual std::int64_t feature_dim() const = 0;
  virtual std::int64_t num_classes() const = 0;
  virtual std::string name() const = 0;

  /// Deterministically generates example `i` (0 <= i < size()).
  virtual Example example(std::int64_t i) const = 0;

  /// Writes example `i`'s features into `out_features` (exactly
  /// feature_dim() floats) and returns its label. The hot-path form of
  /// example(): the per-VN gather loop calls it once per row without
  /// materializing an Example. The default wraps example(); concrete
  /// datasets override it to generate in place.
  virtual std::int64_t example_into(std::int64_t i, std::span<float> out_features) const;

  /// Materializes examples into a feature matrix and label vector.
  /// `indices` maps batch position -> dataset index. Both outputs are
  /// reshaped in place and reuse their buffers — a warm caller-owned pair
  /// makes repeated gathers allocation-free.
  void gather(const std::vector<std::int64_t>& indices, Tensor& features,
              std::vector<std::int64_t>& labels) const;
};

/// Mixture of Gaussians: class c is an isotropic Gaussian around a random
/// class center; `noise` controls overlap and hence the achievable (Bayes)
/// accuracy. Used as the "imagenet-sim" stand-in where the headline is a
/// target accuracy reached only with well-tuned optimization.
class GaussianMixtureDataset : public Dataset {
 public:
  /// `index_offset` shifts the per-example random streams, letting a
  /// validation split share the class centers (same seed) while drawing
  /// disjoint examples (offset past the training range).
  GaussianMixtureDataset(std::string name, std::uint64_t seed, std::int64_t n,
                         std::int64_t dim, std::int64_t classes, float noise,
                         std::int64_t index_offset = 0);

  std::int64_t size() const override { return n_; }
  std::int64_t feature_dim() const override { return dim_; }
  std::int64_t num_classes() const override { return classes_; }
  std::string name() const override { return name_; }
  Example example(std::int64_t i) const override;
  std::int64_t example_into(std::int64_t i, std::span<float> out_features) const override;

 private:
  std::string name_;
  std::uint64_t seed_;
  std::int64_t n_, dim_, classes_;
  float noise_;
  std::int64_t index_offset_ = 0;
  std::vector<std::vector<float>> centers_;
};

/// Teacher-network dataset: inputs are Gaussian, labels come from a fixed
/// random two-layer teacher, and a fraction `label_noise` of labels are
/// resampled uniformly. The Bayes accuracy is therefore approximately
/// 1 - label_noise * (1 - 1/classes), which lets each synthetic GLUE task
/// be calibrated to its paper target accuracy.
class TeacherDataset : public Dataset {
 public:
  /// `index_offset` as in GaussianMixtureDataset: validation splits share
  /// the teacher weights but draw disjoint examples.
  TeacherDataset(std::string name, std::uint64_t seed, std::int64_t n,
                 std::int64_t dim, std::int64_t classes, std::int64_t hidden,
                 float label_noise, std::int64_t index_offset = 0);

  std::int64_t size() const override { return n_; }
  std::int64_t feature_dim() const override { return dim_; }
  std::int64_t num_classes() const override { return classes_; }
  std::string name() const override { return name_; }
  Example example(std::int64_t i) const override;
  std::int64_t example_into(std::int64_t i, std::span<float> out_features) const override;

 private:
  std::string name_;
  std::uint64_t seed_;
  std::int64_t n_, dim_, classes_, hidden_;
  float label_noise_;
  std::int64_t index_offset_ = 0;
  // Teacher weights: dim x hidden and hidden x classes, row-major.
  std::vector<float> w1_, w2_;
};

/// Two-interleaved-spirals binary task; small and hard enough that batch
/// size visibly changes the convergence trajectory (used by the batch-size
/// exploration experiments, Fig 9).
class SpiralsDataset : public Dataset {
 public:
  SpiralsDataset(std::string name, std::uint64_t seed, std::int64_t n, float noise);

  std::int64_t size() const override { return n_; }
  std::int64_t feature_dim() const override { return 2; }
  std::int64_t num_classes() const override { return 2; }
  std::string name() const override { return name_; }
  Example example(std::int64_t i) const override;
  std::int64_t example_into(std::int64_t i, std::span<float> out_features) const override;

 private:
  std::string name_;
  std::uint64_t seed_;
  std::int64_t n_;
  float noise_;
};

}  // namespace vf
