#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace vf {

std::int64_t Dataset::example_into(std::int64_t i, std::span<float> out_features) const {
  const Example ex = example(i);
  check(static_cast<std::int64_t>(ex.features.size()) == feature_dim() &&
            ex.features.size() == out_features.size(),
        "dataset example feature dim mismatch");
  std::copy(ex.features.begin(), ex.features.end(), out_features.begin());
  return ex.label;
}

void Dataset::gather(const std::vector<std::int64_t>& indices, Tensor& features,
                     std::vector<std::int64_t>& labels) const {
  const auto n = static_cast<std::int64_t>(indices.size());
  const std::int64_t d = feature_dim();
  // Reshape in place: a warm caller-owned pair makes the gather
  // allocation-free, and rows are generated straight into the matrix.
  features.ensure_shape({n, d});
  labels.resize(static_cast<std::size_t>(n));
  float* row = features.data().data();
  for (std::int64_t r = 0; r < n; ++r, row += d) {
    labels[static_cast<std::size_t>(r)] = example_into(
        indices[static_cast<std::size_t>(r)], std::span<float>(row, static_cast<std::size_t>(d)));
  }
}

// -------------------------------------------------- GaussianMixtureDataset

GaussianMixtureDataset::GaussianMixtureDataset(std::string name, std::uint64_t seed,
                                               std::int64_t n, std::int64_t dim,
                                               std::int64_t classes, float noise,
                                               std::int64_t index_offset)
    : name_(std::move(name)),
      seed_(seed),
      n_(n),
      dim_(dim),
      classes_(classes),
      noise_(noise),
      index_offset_(index_offset) {
  check(n > 0 && dim > 0 && classes > 1, "invalid GaussianMixtureDataset parameters");
  check(noise > 0.0F, "noise must be positive");
  // Class centers on a deterministic stream; unit-norm directions scaled
  // apart so class separation is controlled purely by `noise`.
  CounterRng rng(seed_, /*stream=*/0xC3A7E5);
  centers_.resize(static_cast<std::size_t>(classes));
  for (auto& c : centers_) {
    c.resize(static_cast<std::size_t>(dim));
    float norm2 = 0.0F;
    for (auto& v : c) {
      v = rng.normal();
      norm2 += v * v;
    }
    const float inv = 1.0F / std::sqrt(std::max(norm2, 1e-12F));
    for (auto& v : c) v *= inv;
  }
}

std::int64_t GaussianMixtureDataset::example_into(std::int64_t i,
                                                  std::span<float> out) const {
  check_index(i, n_, "dataset example");
  check(static_cast<std::int64_t>(out.size()) == dim_, "feature buffer size mismatch");
  CounterRng rng(seed_, 0xE1A000ULL + static_cast<std::uint64_t>(i + index_offset_));
  const auto label =
      static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(classes_)));
  const auto& center = centers_[static_cast<std::size_t>(label)];
  for (std::int64_t j = 0; j < dim_; ++j)
    out[static_cast<std::size_t>(j)] =
        center[static_cast<std::size_t>(j)] + noise_ * rng.normal();
  return label;
}

Example GaussianMixtureDataset::example(std::int64_t i) const {
  Example ex;
  ex.features.resize(static_cast<std::size_t>(dim_));
  ex.label = example_into(i, ex.features);
  return ex;
}

// --------------------------------------------------------- TeacherDataset

TeacherDataset::TeacherDataset(std::string name, std::uint64_t seed, std::int64_t n,
                               std::int64_t dim, std::int64_t classes,
                               std::int64_t hidden, float label_noise,
                               std::int64_t index_offset)
    : name_(std::move(name)),
      seed_(seed),
      n_(n),
      dim_(dim),
      classes_(classes),
      hidden_(hidden),
      label_noise_(label_noise),
      index_offset_(index_offset) {
  check(n > 0 && dim > 0 && classes > 1 && hidden > 0, "invalid TeacherDataset parameters");
  check(label_noise >= 0.0F && label_noise < 1.0F, "label noise must be in [0, 1)");
  CounterRng rng(seed_, /*stream=*/0x7EAC4E);
  w1_.resize(static_cast<std::size_t>(dim * hidden));
  w2_.resize(static_cast<std::size_t>(hidden * classes));
  const float s1 = std::sqrt(2.0F / static_cast<float>(dim));
  const float s2 = std::sqrt(2.0F / static_cast<float>(hidden));
  for (auto& v : w1_) v = rng.normal(0.0F, s1);
  for (auto& v : w2_) v = rng.normal(0.0F, s2);
}

std::int64_t TeacherDataset::example_into(std::int64_t i, std::span<float> out) const {
  check_index(i, n_, "dataset example");
  check(static_cast<std::int64_t>(out.size()) == dim_, "feature buffer size mismatch");
  CounterRng rng(seed_, 0x7E0000ULL + static_cast<std::uint64_t>(i + index_offset_));
  for (float& v : out) v = rng.normal();

  // Teacher forward pass: relu(x @ w1) @ w2, label = argmax. The hidden
  // activations live on the stack for the (catalog-wide) small teachers so
  // the per-row gather stays allocation-free.
  constexpr std::int64_t kStackHidden = 64;
  float h_stack[kStackHidden];
  std::vector<float> h_heap;
  float* h = h_stack;
  if (hidden_ > kStackHidden) {
    h_heap.resize(static_cast<std::size_t>(hidden_));
    h = h_heap.data();
  }
  for (std::int64_t k = 0; k < hidden_; ++k) {
    float acc = 0.0F;
    for (std::int64_t j = 0; j < dim_; ++j)
      acc += out[static_cast<std::size_t>(j)] *
             w1_[static_cast<std::size_t>(j * hidden_ + k)];
    h[k] = acc > 0.0F ? acc : 0.0F;
  }
  std::int64_t best = 0;
  float best_v = -1e30F;
  for (std::int64_t c = 0; c < classes_; ++c) {
    float acc = 0.0F;
    for (std::int64_t k = 0; k < hidden_; ++k)
      acc += h[k] * w2_[static_cast<std::size_t>(k * classes_ + c)];
    if (acc > best_v) {
      best_v = acc;
      best = c;
    }
  }
  std::int64_t label = best;

  if (label_noise_ > 0.0F && rng.next_double() < label_noise_) {
    label = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(classes_)));
  }
  return label;
}

Example TeacherDataset::example(std::int64_t i) const {
  Example ex;
  ex.features.resize(static_cast<std::size_t>(dim_));
  ex.label = example_into(i, ex.features);
  return ex;
}

// --------------------------------------------------------- SpiralsDataset

SpiralsDataset::SpiralsDataset(std::string name, std::uint64_t seed, std::int64_t n,
                               float noise)
    : name_(std::move(name)), seed_(seed), n_(n), noise_(noise) {
  check(n > 0, "SpiralsDataset size must be positive");
  check(noise >= 0.0F, "noise must be non-negative");
}

std::int64_t SpiralsDataset::example_into(std::int64_t i, std::span<float> out) const {
  check_index(i, n_, "dataset example");
  check(out.size() == 2, "feature buffer size mismatch");
  CounterRng rng(seed_, 0x59124ULL + static_cast<std::uint64_t>(i));
  const auto label = static_cast<std::int64_t>(i % 2);
  const float t = 0.25F + 3.5F * static_cast<float>(rng.next_double());  // angle parameter
  const float r = t / 4.0F;
  const float phase = label == 0 ? 0.0F : 3.14159265F;
  out[0] = r * std::cos(t * 3.0F + phase) + noise_ * rng.normal();
  out[1] = r * std::sin(t * 3.0F + phase) + noise_ * rng.normal();
  return label;
}

Example SpiralsDataset::example(std::int64_t i) const {
  Example ex;
  ex.features.resize(2);
  ex.label = example_into(i, ex.features);
  return ex;
}

}  // namespace vf
