// Deterministic epoch shuffling and exactly-once (possibly uneven) sharding.
//
// §5.2 of the paper: "existing sharding techniques assume the batch is
// split evenly across the accelerators. Naively reusing these techniques
// for heterogeneous training will result in certain input examples being
// observed more often than others." This module owns the invariant that
// every example index in an epoch is assigned to exactly one virtual node,
// even when per-VN batch shares are unequal.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace vf {

/// Deterministic permutation of the dataset for a given epoch. Pure
/// function of (seed, epoch) — independent of devices and mappings.
std::vector<std::int64_t> epoch_permutation(std::int64_t dataset_size,
                                            std::uint64_t seed, std::int64_t epoch);

/// Per-VN slice of one global batch: contiguous range in the permuted
/// epoch order.
struct BatchSlice {
  std::int64_t begin = 0;  ///< offset within the global batch
  std::int64_t count = 0;  ///< number of examples for this VN
};

/// Splits a global batch of size B into slices proportional to `shares`
/// (one entry per virtual node; shares are the per-VN batch sizes and must
/// sum to B). Returns one contiguous slice per VN, in VN-id order, covering
/// [0, B) exactly once.
std::vector<BatchSlice> split_batch(std::int64_t global_batch,
                                    const std::vector<std::int64_t>& shares);

/// Produces the dataset indices for virtual node `vn` in global batch
/// number `batch_in_epoch` of `epoch`. Batches tile the permuted epoch;
/// the final partial batch of an epoch is dropped (standard drop-remainder
/// semantics, which keeps the global batch size constant as the paper's
/// convergence argument requires).
std::vector<std::int64_t> vn_batch_indices(std::int64_t dataset_size,
                                           std::uint64_t seed, std::int64_t epoch,
                                           std::int64_t batch_in_epoch,
                                           std::int64_t global_batch,
                                           const std::vector<BatchSlice>& slices,
                                           std::int64_t vn);

/// Number of full global batches in one epoch (drop-remainder).
std::int64_t batches_per_epoch(std::int64_t dataset_size, std::int64_t global_batch);

}  // namespace vf
