// Batch provider: materializes per-virtual-node micro-batches.
//
// Caches the epoch permutation so the engine can pull many VN slices per
// step without re-deriving it; the produced indices are identical to the
// pure-function form in sharding.h (a property test asserts this).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/sharding.h"

namespace vf {

/// One virtual node's materialized micro-batch.
struct MicroBatch {
  Tensor features;                   ///< [count x feature_dim]
  std::vector<std::int64_t> labels;  ///< size count
};

/// Iterates a dataset in deterministic epoch order, serving per-VN slices
/// of each global batch. The slicing (per-VN shares) may change between
/// batches — that is exactly what happens on an elastic resize or a
/// heterogeneous reconfiguration — without affecting which examples appear
/// in which global batch.
class EpochBatcher {
 public:
  EpochBatcher(const Dataset& dataset, std::uint64_t seed, std::int64_t global_batch);

  std::int64_t batches_per_epoch() const { return n_batches_; }
  std::int64_t global_batch() const { return global_batch_; }

  /// Dataset indices for VN `vn` of global batch `batch_in_epoch` in
  /// `epoch`, given the current slice layout.
  std::vector<std::int64_t> indices(std::int64_t epoch, std::int64_t batch_in_epoch,
                                    const std::vector<BatchSlice>& slices,
                                    std::int64_t vn);

  /// indices() into a reusable caller-owned vector (hot-path form).
  void indices_into(std::int64_t epoch, std::int64_t batch_in_epoch,
                    const std::vector<BatchSlice>& slices, std::int64_t vn,
                    std::vector<std::int64_t>& out);

  /// Materialized micro-batch for VN `vn`.
  MicroBatch micro_batch(std::int64_t epoch, std::int64_t batch_in_epoch,
                         const std::vector<BatchSlice>& slices, std::int64_t vn);

  /// micro_batch() into reusable caller-owned buffers: `mb`'s feature
  /// matrix and label vector are reshaped in place and `idx_scratch`
  /// holds the index list — the engine keeps one (mb, scratch) pair per
  /// VN, making steady-state batch materialization allocation-free.
  void micro_batch_into(std::int64_t epoch, std::int64_t batch_in_epoch,
                        const std::vector<BatchSlice>& slices, std::int64_t vn,
                        MicroBatch& mb, std::vector<std::int64_t>& idx_scratch);

  /// Warms the epoch-permutation cache. Call once before pulling this
  /// epoch's micro-batches from multiple threads: afterwards indices()/
  /// micro_batch() for that epoch only read shared state.
  void prepare_epoch(std::int64_t epoch) { ensure_epoch(epoch); }

  const Dataset& dataset() const { return dataset_; }

 private:
  void ensure_epoch(std::int64_t epoch);

  const Dataset& dataset_;
  std::uint64_t seed_;
  std::int64_t global_batch_;
  std::int64_t n_batches_;
  std::int64_t cached_epoch_ = -1;
  std::vector<std::int64_t> perm_;
};

/// Materializes an entire dataset (or its first `limit` examples) for
/// evaluation passes.
MicroBatch materialize_all(const Dataset& dataset, std::int64_t limit = -1);

/// Materializes a micro-batch from explicit dataset indices. This is the
/// serving path (src/serve/): the indices come from request payloads, not
/// from epoch slices, so no permutation or slice layout is involved.
MicroBatch gather_micro_batch(const Dataset& dataset,
                              const std::vector<std::int64_t>& indices);

/// gather_micro_batch() into a reusable caller-owned MicroBatch (the
/// serving path keeps per-slot scratch so repeated dispatches reuse
/// buffers instead of reallocating).
void gather_micro_batch_into(const Dataset& dataset,
                             const std::vector<std::int64_t>& indices,
                             MicroBatch& out);

}  // namespace vf
