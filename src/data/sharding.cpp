#include "data/sharding.h"

#include <numeric>

#include "util/common.h"
#include "util/rng.h"

namespace vf {

std::vector<std::int64_t> epoch_permutation(std::int64_t dataset_size,
                                            std::uint64_t seed, std::int64_t epoch) {
  check(dataset_size > 0, "dataset must be non-empty");
  check(epoch >= 0, "epoch must be non-negative");
  CounterRng rng(seed, 0x5C0FFEULL + static_cast<std::uint64_t>(epoch));
  return rng.permutation(dataset_size);
}

std::vector<BatchSlice> split_batch(std::int64_t global_batch,
                                    const std::vector<std::int64_t>& shares) {
  check(global_batch > 0, "global batch must be positive");
  check(!shares.empty(), "at least one virtual node required");
  std::int64_t total = 0;
  for (auto s : shares) {
    check(s > 0, "every virtual node must process at least one example");
    total += s;
  }
  check(total == global_batch,
        "virtual-node shares (" + std::to_string(total) + ") must sum to the global batch (" +
            std::to_string(global_batch) + ")");

  std::vector<BatchSlice> out;
  out.reserve(shares.size());
  std::int64_t off = 0;
  for (auto s : shares) {
    out.push_back({off, s});
    off += s;
  }
  return out;
}

std::int64_t batches_per_epoch(std::int64_t dataset_size, std::int64_t global_batch) {
  check(global_batch > 0, "global batch must be positive");
  check(dataset_size >= global_batch,
        "dataset smaller than one global batch (size " + std::to_string(dataset_size) +
            " < batch " + std::to_string(global_batch) + ")");
  return dataset_size / global_batch;
}

std::vector<std::int64_t> vn_batch_indices(std::int64_t dataset_size,
                                           std::uint64_t seed, std::int64_t epoch,
                                           std::int64_t batch_in_epoch,
                                           std::int64_t global_batch,
                                           const std::vector<BatchSlice>& slices,
                                           std::int64_t vn) {
  check_index(vn, static_cast<std::int64_t>(slices.size()), "virtual node");
  const std::int64_t nb = batches_per_epoch(dataset_size, global_batch);
  check_index(batch_in_epoch, nb, "batch in epoch");

  const auto perm = epoch_permutation(dataset_size, seed, epoch);
  const BatchSlice& slice = slices[static_cast<std::size_t>(vn)];
  const std::int64_t base = batch_in_epoch * global_batch + slice.begin;

  std::vector<std::int64_t> out(static_cast<std::size_t>(slice.count));
  for (std::int64_t k = 0; k < slice.count; ++k)
    out[static_cast<std::size_t>(k)] = perm[static_cast<std::size_t>(base + k)];
  return out;
}

}  // namespace vf
