#include "sched/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sched/elastic.h"
#include "sched/throughput.h"
#include "util/common.h"

namespace vf {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// A job whose remaining work is below this is finished (simulate() uses
// the same epsilon, so analytic jobs complete at identical stamps here).
constexpr double kStepEps = 1e-6;

std::int64_t clamp64(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return std::max(lo, std::min(hi, v));
}

}  // namespace

// ---------------------------------------------------------------------------
// ClusterController
// ---------------------------------------------------------------------------

ClusterController::ClusterController(ClusterInventory cluster, Scheduler& policy,
                                     ClusterOptions options)
    : cluster_(std::move(cluster)), policy_(policy), options_(std::move(options)) {
  check(cluster_.total() > 0, "cluster inventory is empty");
  check(options_.max_events > 0, "max_events must be positive");
  check(options_.reeval_interval_s >= 0.0, "reeval_interval_s must be >= 0");
}

void ClusterController::set_observability(obs::Observability obs) { obs_ = obs; }

void ClusterController::add_tenant(JobSpec spec, Backing backing,
                                   sched::DeviceLease* lease) {
  check(!ran_, "cannot add jobs after run()");
  check(spec.arrival_s >= 0.0, "job arrival must be >= 0");
  for (const Tenant& t : tenants_) {
    check(t.state.spec.id != spec.id, "duplicate job id " + std::to_string(spec.id));
  }
  Tenant t;
  t.state.spec = std::move(spec);
  t.state.remaining_steps = static_cast<double>(t.state.spec.total_steps);
  t.backing = backing;
  t.lease = lease;
  t.step_time_s = kInf;
  tenants_.push_back(std::move(t));
}

void ClusterController::add_train_job(JobSpec spec) {
  check(spec.kind == JobKind::kTrain, "add_train_job needs a kTrain spec");
  check(spec.total_steps > 0, "training job needs total_steps > 0");
  check(spec.demand_gpus > 0, "training job needs demand_gpus > 0");
  check(spec.global_batch > 0, "training job needs global_batch > 0");
  add_tenant(std::move(spec), Backing::kAnalytic, nullptr);
}

void ClusterController::add_serve_job(JobSpec spec, sched::DeviceLease& lease) {
  check(spec.kind == JobKind::kServe, "add_serve_job needs a kServe spec");
  check(spec.min_gpus >= 1, "serving job needs min_gpus >= 1");
  check(spec.max_gpus >= spec.min_gpus, "serving job needs max_gpus >= min_gpus");
  add_tenant(std::move(spec), Backing::kServeLease, &lease);
}

void ClusterController::add_train_lease(JobSpec spec, sched::DeviceLease& lease) {
  check(spec.kind == JobKind::kTrain, "add_train_lease needs a kTrain spec");
  check(spec.total_steps > 0, "training lease needs total_steps > 0");
  check(spec.demand_gpus > 0, "training lease needs demand_gpus > 0");
  add_tenant(std::move(spec), Backing::kTrainLease, &lease);
}

void ClusterController::advance_analytic(double now, double t_next) {
  const double dt_total = t_next - now;
  if (dt_total <= 0.0) return;
  for (Tenant& t : tenants_) {
    if (t.backing != Backing::kAnalytic) continue;
    JobState& js = t.state;
    if (js.finished() || js.alloc.empty()) continue;
    const double start = std::max(now, js.pause_until_s);
    const double dt = t_next - start;
    if (dt <= 0.0) continue;
    const double steps = dt / t.step_time_s;
    js.remaining_steps -= steps;
    const double tput = static_cast<double>(js.spec.global_batch) / t.step_time_s;
    js.attained_service +=
        dt * tput / reference_throughput(js.spec.profile, js.spec.global_batch);
    if (js.remaining_steps <= kStepEps) {
      js.remaining_steps = 0.0;
      js.completion_s = t_next;
    }
  }
}

void ClusterController::refresh_from_leases(double now) {
  for (Tenant& t : tenants_) {
    if (t.lease == nullptr || t.retired || t.state.finished()) continue;
    if (!t.state.arrived(now)) continue;
    JobState& js = t.state;
    if (t.backing == Backing::kTrainLease) {
      const sched::LoadSignal sig = t.lease->load();
      js.remaining_steps = std::max(0.0, static_cast<double>(sig.queue_depth));
      // Attained service in the same normalized units simulate() uses, so
      // LAS-style policies rank live engines against analytic jobs.
      const double done =
          static_cast<double>(js.spec.total_steps) - js.remaining_steps;
      if (t.step_time_s < kInf && t.step_time_s > 0.0) {
        const double tput =
            static_cast<double>(js.spec.global_batch) / t.step_time_s;
        js.attained_service = done * t.step_time_s * tput /
            reference_throughput(js.spec.profile, js.spec.global_batch);
      }
      continue;
    }
    // Serving: the whole point of the refactor. The lease reports facts;
    // the controller turns them into the policy-facing demand.
    const sched::LoadSignal sig = t.lease->load();
    // The live band intersects the spec's band with the lease's: the
    // lease's max caps both sides (fault kills shrink capacity), and its
    // min floors them (a mid-cutover rolling migration reports
    // min == max == devices, pinning the set until the cutover lands).
    js.live_min_gpus = std::max<std::int64_t>(
        1, std::min(std::max(js.spec.min_gpus, sig.min_devices),
                    sig.max_devices));
    js.live_max_gpus =
        std::max(js.live_min_gpus, std::min(js.spec.max_gpus, sig.max_devices));
    std::int64_t desired = sched::elastic_resize_target(
        sig.queue_depth, sig.inflight, sig.devices, sig.high_watermark,
        sig.low_watermark, js.live_min_gpus, js.live_max_gpus);
    js.slo_pressure =
        sig.deadline_s > 0.0 ? sig.oldest_wait_s / sig.deadline_s : 0.0;
    if (js.slo_pressure > 1.0) {
      // The oldest request has already blown its deadline: doubling one
      // step at a time would pay a migration per doubling while the
      // backlog keeps aging, so ask for the whole band ceiling at once.
      desired = js.live_max_gpus;
    } else if (js.slo_pressure > 0.5) {
      // Deadline pressure overrides hysteresis: the oldest request has
      // burned half its SLO budget, so ask for double the devices now
      // rather than waiting for the watermark to trip.
      desired = std::max(desired, std::min(js.live_max_gpus, sig.devices * 2));
    }
    js.desired_gpus = clamp64(desired, js.live_min_gpus, js.live_max_gpus);
    // Reconcile the recorded allocation with the lease's actual device
    // count — a fault kill shrinks the set without any grant being issued.
    if (sig.devices != js.alloc.total() && !js.alloc.empty()) {
      const DeviceType pool = js.alloc.per_type.begin()->first;
      if (t.open_since_s >= 0.0 && now > t.open_since_s) {
        js.timeline.push_back({t.open_since_s, now, js.alloc});
      }
      js.alloc = Allocation::of(pool, sig.devices);
      t.open_since_s = now;
    }
  }
}

double ClusterController::next_event(double now) const {
  double t_next = kInf;
  bool lease_active = false;
  for (const Tenant& t : tenants_) {
    const JobState& js = t.state;
    if (js.finished() || t.retired) continue;
    if (!js.arrived(now)) {
      t_next = std::min(t_next, js.spec.arrival_s);
      continue;
    }
    if (t.lease != nullptr) {
      lease_active = true;
      const double e = t.lease->next_event_s();
      if (e < kInf) t_next = std::min(t_next, std::max(e, now));
      continue;
    }
    if (!js.alloc.empty() && t.step_time_s < kInf) {
      const double start = std::max(now, js.pause_until_s);
      t_next = std::min(t_next, start + js.remaining_steps * t.step_time_s);
    }
  }
  const double round = policy_.round_interval_s();
  if (round > 0.0) {
    const double tick = (std::floor(now / round + 1e-9) + 1.0) * round;
    t_next = std::min(t_next, tick);
  }
  if (options_.reeval_interval_s > 0.0 && lease_active) {
    const double iv = options_.reeval_interval_s;
    const double tick = (std::floor(now / iv + 1e-9) + 1.0) * iv;
    t_next = std::min(t_next, tick);
  }
  return t_next;
}

void ClusterController::apply_train_alloc(Tenant& t, const Allocation& next,
                                          double now) {
  JobState& js = t.state;
  if (next == js.alloc) return;
  if (t.open_since_s >= 0.0 && now > t.open_since_s && !js.alloc.empty()) {
    js.timeline.push_back({t.open_since_s, now, js.alloc});
  }
  const bool had_run = js.first_start_s >= 0.0;
  js.alloc = next;
  if (!next.empty()) {
    if (!had_run) {
      js.first_start_s = now;
    } else {
      ++js.resizes;
      js.pause_until_s = now + policy_.resize_penalty_s();
    }
    t.open_since_s = now;
    t.step_time_s = allocation_step_time_s(js.spec.profile, js.spec.global_batch,
                                           next, options_.link);
  } else {
    t.open_since_s = -1.0;
    t.step_time_s = kInf;
  }
}

void ClusterController::grant(Tenant& t, const Allocation& next, double now) {
  JobState& js = t.state;
  const std::int64_t cur = js.alloc.total();
  const std::int64_t want = next.total();
  if (t.backing == Backing::kServeLease) {
    check(want >= js.live_min_gpus && want <= js.live_max_gpus,
          "policy " + policy_.name() + " granted serving job " +
              std::to_string(js.spec.id) + " " + std::to_string(want) +
              " devices, outside its live band [" +
              std::to_string(js.live_min_gpus) + ", " +
              std::to_string(js.live_max_gpus) + "]");
  } else {
    check(next.per_type.size() <= 1,
          "train lease grants must be homogeneous (job " +
              std::to_string(js.spec.id) + ")");
  }
  const double migration_s = t.lease->apply_grant(want);
  if (want == cur) return;
  if (js.first_start_s < 0.0 && want > 0) js.first_start_s = now;
  ++js.resizes;
  if (t.open_since_s >= 0.0 && now > t.open_since_s && !js.alloc.empty()) {
    js.timeline.push_back({t.open_since_s, now, js.alloc});
  }
  js.alloc = next;
  t.open_since_s = next.empty() ? -1.0 : now;
  if (t.backing == Backing::kTrainLease && !next.empty()) {
    // Refresh the cost-model step time so attained service stays
    // comparable with analytic jobs after a resize.
    t.step_time_s = allocation_step_time_s(js.spec.profile, js.spec.global_batch,
                                           next, options_.link);
  }
  grants_.push_back({now, js.spec.id, cur, want, migration_s});
  if (obs_.metrics != nullptr) {
    obs_.metrics->counter("sched.grants").add();
    obs_.metrics->counter(want > cur ? "sched.grants.grow" : "sched.grants.shrink")
        .add();
  }
  if (obs_.trace != nullptr) {
    obs_.trace->instant("grant", now, /*device=*/-1,
                        /*vn=*/static_cast<std::int32_t>(js.spec.id),
                        /*model=*/-1, cur, want, migration_s);
  }
}

void ClusterController::consult_policy(double now) {
  std::vector<const JobState*> active;
  std::vector<Tenant*> active_tenants;
  for (Tenant& t : tenants_) {
    if (t.state.finished() || t.retired || !t.state.arrived(now)) continue;
    active.push_back(&t.state);
    active_tenants.push_back(&t);
  }
  if (active.empty()) return;
  std::map<std::int64_t, Allocation> allocs =
      policy_.schedule(cluster_, active, now);
  // The defensive over-commit check: a buggy policy dies HERE, at the
  // decision point, not as corrupted downstream accounting.
  validate_allocations(cluster_, allocs);
  if (obs_.metrics != nullptr) obs_.metrics->counter("sched.policy_calls").add();
  std::int64_t serve_devices = 0;
  std::int64_t train_devices = 0;
  std::int64_t running = 0;
  for (Tenant* t : active_tenants) {
    const auto it = allocs.find(t->state.spec.id);
    const Allocation next = it == allocs.end() ? Allocation{} : it->second;
    if (t->lease != nullptr) {
      grant(*t, next, now);
    } else {
      apply_train_alloc(*t, next, now);
    }
    const std::int64_t n = t->state.alloc.total();
    if (t->state.is_serve()) serve_devices += n; else train_devices += n;
    if (n > 0) ++running;
  }
  if (obs_.metrics != nullptr) {
    obs_.metrics->gauge("sched.devices.serve")
        .set(static_cast<double>(serve_devices), now);
    obs_.metrics->gauge("sched.devices.train")
        .set(static_cast<double>(train_devices), now);
    obs_.metrics->gauge("sched.jobs.running").set(static_cast<double>(running),
                                                  now);
  }
}

ClusterReport ClusterController::run() {
  check(!ran_, "ClusterController::run() may only be called once");
  ran_ = true;
  check(!tenants_.empty(), "no jobs added");

  double now = 0.0;
  std::int64_t events = 0;
  refresh_from_leases(now);
  consult_policy(now);  // jobs arriving at t = 0 get their first decision

  auto unfinished = [&]() {
    for (const Tenant& t : tenants_) {
      if (t.lease != nullptr) {
        if (!t.retired) return true;
      } else if (!t.state.finished()) {
        return true;
      }
    }
    return false;
  };

  while (unfinished()) {
    check(++events <= options_.max_events,
          "cluster controller exceeded max_events (policy/lease livelock?)");
    const double t_next = next_event(now);
    check(t_next < kInf,
          "cluster controller stalled: jobs remain but no future event "
          "(policy " + policy_.name() + " starving a job?)");
    advance_analytic(now, std::max(now, t_next));
    now = std::max(now, t_next);
    // Pump live holders up to the new stamp, in add order.
    for (Tenant& t : tenants_) {
      if (t.lease == nullptr || t.retired || t.state.finished()) continue;
      if (!t.state.arrived(now)) continue;
      t.lease->pump(now);
    }
    // Retire drained leases: devices return to the pool at this stamp. A
    // drained lease still reporting a finite next event (EngineTrainLease
    // whose last step overshot the horizon) keeps its devices until that
    // stamp, so completion lands on the holder's own clock.
    for (Tenant& t : tenants_) {
      if (t.lease == nullptr || t.retired) continue;
      if (!t.state.arrived(now) || !t.lease->drained()) continue;
      if (t.lease->next_event_s() < kInf) continue;
      if (t.backing == Backing::kServeLease) {
        // Serving drains only once its trace is exhausted; a mid-run empty
        // queue with future arrivals reports drained() == false.
        t.state.completion_s = now;
      } else if (t.state.completion_s < 0.0) {
        t.state.completion_s = now;
      }
      if (t.open_since_s >= 0.0 && now > t.open_since_s && !t.state.alloc.empty()) {
        t.state.timeline.push_back({t.open_since_s, now, t.state.alloc});
      }
      t.state.alloc = {};
      t.open_since_s = -1.0;
      t.retired = true;
    }
    refresh_from_leases(now);
    consult_policy(now);
  }

  ClusterReport report;
  report.end_s = now;
  for (Tenant& t : tenants_) {
    if (t.open_since_s >= 0.0 && now > t.open_since_s && !t.state.alloc.empty()) {
      t.state.timeline.push_back({t.open_since_s, now, t.state.alloc});
      t.open_since_s = -1.0;
    }
    if (t.state.spec.kind == JobKind::kTrain && t.state.finished()) {
      report.train_makespan_s =
          std::max(report.train_makespan_s, t.state.completion_s);
    }
    report.jobs.push_back(t.state);
  }
  report.grants = grants_;
  return report;
}

// ---------------------------------------------------------------------------
// StaticPartitionScheduler
// ---------------------------------------------------------------------------

StaticPartitionScheduler::StaticPartitionScheduler(Scheduler& inner,
                                                   DeviceType pool_type)
    : inner_(inner), pool_type_(pool_type) {}

std::map<std::int64_t, Allocation> StaticPartitionScheduler::schedule(
    const ClusterInventory& cluster, const std::vector<const JobState*>& jobs,
    double now) {
  ClusterInventory remainder = cluster;
  std::map<std::int64_t, Allocation> out;
  std::vector<const JobState*> train;
  for (const JobState* j : jobs) {
    if (!j->is_serve()) {
      train.push_back(j);
      continue;
    }
    // The static partition: the serving job gets its provisioned size no
    // matter the load, clamped into the live band so a device kill still
    // caps it and the floor stays honoured.
    const std::int64_t pinned =
        clamp64(j->spec.demand_gpus, j->live_min_gpus, j->live_max_gpus);
    auto& free = remainder.per_type[pool_type_];
    check(pinned <= free,
          "static partition does not fit: serving job " +
              std::to_string(j->spec.id) + " pins " + std::to_string(pinned) +
              " devices but only " + std::to_string(free) + " remain");
    free -= pinned;
    out[j->spec.id] = Allocation::of(pool_type_, pinned);
  }
  std::map<std::int64_t, Allocation> train_out =
      inner_.schedule(remainder, train, now);
  out.insert(train_out.begin(), train_out.end());
  return out;
}

// ---------------------------------------------------------------------------
// EngineTrainLease
// ---------------------------------------------------------------------------

EngineTrainLease::EngineTrainLease(VirtualFlowEngine& engine,
                                   std::int64_t total_steps, DeviceType pool_type)
    : engine_(engine), total_steps_(total_steps), pool_type_(pool_type) {
  check(total_steps_ > 0, "EngineTrainLease needs total_steps > 0");
}

double EngineTrainLease::clock_now() const {
  return std::max(clock_, engine_.sim_time_s() + clock_offset_);
}

double EngineTrainLease::next_event_s() const {
  if (granted_ == 0) return kInf;
  if (drained()) {
    // The final step overshot the last pumped horizon; report its true
    // completion stamp once so the controller retires the lease at the
    // engine's clock, not one event early.
    const double ahead = engine_.sim_time_s() + clock_offset_;
    return ahead > clock_ ? ahead : kInf;
  }
  return clock_now();
}

void EngineTrainLease::pump(double horizon_s) {
  if (granted_ > 0) {
    // Run whole steps until the engine's offset clock passes the horizon.
    // `<=` is deliberate: stopping exactly AT the horizon would report the
    // same stamp as the next event and livelock the controller.
    while (!drained() && clock_now() <= horizon_s) {
      engine_.train_step();
      ++steps_done_;
    }
  }
  if (horizon_s < kInf) clock_ = std::max(clock_, horizon_s);
}

sched::LoadSignal EngineTrainLease::load() const {
  sched::LoadSignal sig;
  sig.queue_depth = std::max<std::int64_t>(0, total_steps_ - steps_done_);
  sig.devices = granted_;
  sig.min_devices = 0;  // training tolerates full preemption
  sig.max_devices = engine_.mapping().total_vns();
  sig.drained = drained();
  return sig;
}

double EngineTrainLease::apply_grant(std::int64_t devices) {
  check(devices >= 0, "negative device grant");
  if (devices == granted_) return 0.0;
  if (devices == 0) {
    // Full preemption: the engine keeps its device set (no resize cost
    // now) but stops stepping until a positive re-grant.
    granted_ = 0;
    return 0.0;
  }
  check(devices <= engine_.mapping().total_vns(),
        "grant exceeds the engine's VN count");
  if (granted_ == 0) {
    // Re-basing the offset charges the preempted span to the lease: the
    // engine's clock stood still while the controller's moved on.
    clock_offset_ = clock_ - engine_.sim_time_s();
  }
  const double before = engine_.sim_time_s();
  if (devices != static_cast<std::int64_t>(engine_.devices().size())) {
    engine_.resize(make_devices(pool_type_, devices));
  }
  granted_ = devices;
  return engine_.sim_time_s() - before;
}

}  // namespace vf
