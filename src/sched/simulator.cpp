#include "sched/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/common.h"

namespace vf {

std::int64_t ClusterInventory::total() const {
  std::int64_t n = 0;
  for (const auto& [t, c] : per_type) n += c;
  return n;
}

std::vector<double> SimResult::jcts() const {
  std::vector<double> out;
  for (const JobState& j : jobs) out.push_back(j.completion_s - j.spec.arrival_s);
  return out;
}

std::vector<double> SimResult::queueing_delays() const {
  std::vector<double> out;
  for (const JobState& j : jobs) out.push_back(j.first_start_s - j.spec.arrival_s);
  return out;
}

namespace {

constexpr double kStepEps = 1e-6;
constexpr double kInf = std::numeric_limits<double>::infinity();

void close_segment(JobState& job, double now, double& open_since) {
  if (open_since >= 0.0 && !job.alloc.empty() && now > open_since) {
    job.timeline.push_back({open_since, now, job.alloc});
  }
  open_since = -1.0;
}

void validate_no_overcommit(const ClusterInventory& cluster,
                            const std::map<std::int64_t, Allocation>& allocs) {
  std::map<DeviceType, std::int64_t> used;
  for (const auto& [id, a] : allocs)
    for (const auto& [t, c] : a.per_type) {
      check(c >= 0, "negative allocation");
      used[t] += c;
    }
  for (const auto& [t, c] : used) {
    const auto it = cluster.per_type.find(t);
    const std::int64_t have = it == cluster.per_type.end() ? 0 : it->second;
    check(c <= have, std::string("scheduler over-committed ") + device_type_name(t) +
                         ": " + std::to_string(c) + " > " + std::to_string(have));
  }
}

}  // namespace

SimResult simulate(const ClusterInventory& cluster, std::vector<JobSpec> trace,
                   Scheduler& policy, const LinkSpec& link) {
  check(!trace.empty(), "empty job trace");
  check(cluster.total() > 0, "empty cluster");
  std::sort(trace.begin(), trace.end(),
            [](const JobSpec& a, const JobSpec& b) { return a.arrival_s < b.arrival_s; });

  std::vector<JobState> jobs(trace.size());
  std::vector<double> open_since(trace.size(), -1.0);
  std::vector<double> step_times(trace.size(), kInf);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    jobs[i].spec = trace[i];
    jobs[i].remaining_steps = static_cast<double>(trace[i].total_steps);
    check(trace[i].total_steps > 0, "job must have positive work");
    check(trace[i].demand_gpus > 0, "job must demand at least one GPU");
  }

  double now = 0.0;
  std::size_t next_arrival = 0;
  const double round = policy.round_interval_s();

  auto unfinished = [&] {
    for (const JobState& j : jobs)
      if (!j.finished()) return true;
    return false;
  };

  std::int64_t guard = 0;
  while (unfinished()) {
    check(++guard < 2'000'000, "simulator exceeded event budget (policy livelock?)");

    // ---- Next event time.
    double t_next = kInf;
    if (next_arrival < jobs.size())
      t_next = std::min(t_next, jobs[next_arrival].spec.arrival_s);
    if (round > 0.0) {
      const double tick = (std::floor(now / round + 1e-9) + 1.0) * round;
      t_next = std::min(t_next, tick);
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      JobState& j = jobs[i];
      if (!j.running()) continue;
      const double start = std::max(now, j.pause_until_s);
      t_next = std::min(t_next, start + j.remaining_steps * step_times[i]);
    }
    check(t_next < kInf,
          "scheduler stalled: queued work but no running jobs, arrivals, or rounds");
    t_next = std::max(t_next, now);

    // ---- Advance running jobs to t_next.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      JobState& j = jobs[i];
      if (!j.running()) continue;
      const double start = std::max(now, j.pause_until_s);
      const double dt = std::max(0.0, t_next - start);
      if (dt > 0.0) {
        const double steps = dt / step_times[i];
        const double tput = static_cast<double>(j.spec.global_batch) / step_times[i];
        j.attained_service +=
            dt * tput / reference_throughput(j.spec.profile, j.spec.global_batch);
        j.remaining_steps = std::max(0.0, j.remaining_steps - steps);
      }
    }
    now = t_next;

    // ---- Completions.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      JobState& j = jobs[i];
      if (!j.finished() && j.running() && j.remaining_steps <= kStepEps) {
        j.completion_s = now;
        close_segment(j, now, open_since[i]);
        j.alloc = Allocation{};
        step_times[i] = kInf;
      }
    }

    // ---- Arrivals.
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].spec.arrival_s <= now + 1e-9) {
      ++next_arrival;
    }

    // ---- Re-schedule.
    std::vector<const JobState*> active;
    std::vector<std::size_t> active_idx;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].arrived(now) && !jobs[i].finished()) {
        active.push_back(&jobs[i]);
        active_idx.push_back(i);
      }
    }
    if (active.empty()) continue;

    auto allocs = policy.schedule(cluster, active, now);
    validate_no_overcommit(cluster, allocs);

    for (std::size_t k = 0; k < active.size(); ++k) {
      const std::size_t i = active_idx[k];
      JobState& j = jobs[i];
      Allocation next;
      const auto it = allocs.find(j.spec.id);
      if (it != allocs.end()) next = it->second;
      if (next == j.alloc) continue;

      close_segment(j, now, open_since[i]);
      const bool had_run = j.first_start_s >= 0.0;
      j.alloc = next;
      if (!next.empty()) {
        if (!had_run) {
          j.first_start_s = now;
        } else {
          // Changing an in-flight allocation costs a pause: VirtualFlow's
          // ~1 s all-gather, or a checkpoint-restart for baselines.
          ++j.resizes;
          j.pause_until_s = now + policy.resize_penalty_s();
        }
        open_since[i] = now;
        step_times[i] = allocation_step_time_s(j.spec.profile, j.spec.global_batch,
                                               j.alloc, link);
      } else {
        step_times[i] = kInf;
      }
    }
  }

  // ---- Metrics.
  SimResult result;
  result.jobs = std::move(jobs);
  double makespan = 0.0;
  double busy_gpu_time = 0.0;
  for (const JobState& j : result.jobs) {
    check(j.finished(), "job did not finish");
    makespan = std::max(makespan, j.completion_s);
    for (const AllocSegment& s : j.timeline)
      busy_gpu_time += static_cast<double>(s.alloc.total()) * (s.t1 - s.t0);
  }
  result.makespan_s = makespan;
  result.avg_utilization =
      busy_gpu_time / (static_cast<double>(cluster.total()) * std::max(makespan, 1e-9));
  return result;
}

}  // namespace vf
