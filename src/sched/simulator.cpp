#include "sched/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/common.h"

namespace vf {

std::int64_t ClusterInventory::total() const {
  std::int64_t n = 0;
  for (const auto& [t, c] : per_type) n += c;
  return n;
}

std::vector<double> SimResult::jcts() const {
  std::vector<double> out;
  for (const JobState& j : jobs) out.push_back(j.completion_s - j.spec.arrival_s);
  return out;
}

std::vector<double> SimResult::queueing_delays() const {
  std::vector<double> out;
  for (const JobState& j : jobs) out.push_back(j.first_start_s - j.spec.arrival_s);
  return out;
}

namespace {

constexpr double kStepEps = 1e-6;
constexpr double kInf = std::numeric_limits<double>::infinity();

void close_segment(JobState& job, double now, double& open_since) {
  if (open_since >= 0.0 && !job.alloc.empty() && now > open_since) {
    job.timeline.push_back({open_since, now, job.alloc});
  }
  open_since = -1.0;
}

}  // namespace

void validate_allocations(const ClusterInventory& cluster,
                          const std::map<std::int64_t, Allocation>& allocs) {
  std::map<DeviceType, std::int64_t> used;
  for (const auto& [id, a] : allocs)
    for (const auto& [t, c] : a.per_type) {
      check(c >= 0, "negative allocation for job " + std::to_string(id));
      used[t] += c;
    }
  for (const auto& [t, c] : used) {
    const auto it = cluster.per_type.find(t);
    const std::int64_t have = it == cluster.per_type.end() ? 0 : it->second;
    check(c <= have, std::string("scheduler over-committed ") + device_type_name(t) +
                         ": " + std::to_string(c) + " > " + std::to_string(have));
  }
}

std::map<std::int64_t, Allocation> carve_serving_grants(
    ClusterInventory& pool, const std::vector<const JobState*>& jobs,
    DeviceType pool_type) {
  std::vector<const JobState*> serve;
  for (const JobState* j : jobs)
    if (j->is_serve()) serve.push_back(j);
  std::map<std::int64_t, Allocation> out;
  if (serve.empty()) return out;

  std::sort(serve.begin(), serve.end(), [](const JobState* a, const JobState* b) {
    if (a->spec.priority != b->spec.priority)
      return a->spec.priority > b->spec.priority;
    return a->spec.id < b->spec.id;
  });

  std::int64_t& free = pool.per_type[pool_type];
  std::map<std::int64_t, std::int64_t> granted;

  // Pass 1: every serving job gets its live minimum — the latency-critical
  // floor a policy is never allowed to dip under. If the minimums alone do
  // not fit, the cluster cannot host the serving set at all.
  std::int64_t mins = 0;
  for (const JobState* j : serve) {
    check(j->live_min_gpus >= 1,
          "serving job " + std::to_string(j->spec.id) +
              " has live_min_gpus < 1 (a granted serving set never runs empty)");
    mins += j->live_min_gpus;
  }
  check(mins <= free, "serving minimums (" + std::to_string(mins) +
                          " GPUs) exceed the pool (" + std::to_string(free) +
                          " " + device_type_name(pool_type) +
                          "); the cluster cannot host the serving set");
  for (const JobState* j : serve) {
    granted[j->spec.id] = j->live_min_gpus;
    free -= j->live_min_gpus;
  }

  // Pass 2: round-robin one device at a time, priority-desc / id-asc
  // order, toward each job's clamped desire. One device per turn (not
  // greedy take-all) so two bursting tenants split scarce headroom
  // instead of the first starving the second.
  bool progress = true;
  while (free > 0 && progress) {
    progress = false;
    for (const JobState* j : serve) {
      if (free == 0) break;
      const std::int64_t want = std::clamp(j->desired_gpus, j->live_min_gpus,
                                           j->live_max_gpus);
      std::int64_t& g = granted[j->spec.id];
      if (g < want) {
        ++g;
        --free;
        progress = true;
      }
    }
  }

  for (const auto& [id, g] : granted) out[id] = Allocation::of(pool_type, g);
  return out;
}

SimResult simulate(const ClusterInventory& cluster, std::vector<JobSpec> trace,
                   Scheduler& policy, const LinkSpec& link) {
  check(!trace.empty(), "empty job trace");
  check(cluster.total() > 0, "empty cluster");
  std::sort(trace.begin(), trace.end(),
            [](const JobSpec& a, const JobSpec& b) { return a.arrival_s < b.arrival_s; });

  std::vector<JobState> jobs(trace.size());
  std::vector<double> open_since(trace.size(), -1.0);
  std::vector<double> step_times(trace.size(), kInf);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    jobs[i].spec = trace[i];
    jobs[i].remaining_steps = static_cast<double>(trace[i].total_steps);
    check(trace[i].kind == JobKind::kTrain,
          "simulate() drives analytic training jobs only; serving jobs are "
          "live replay loops — use the ClusterController (sched/cluster.h)");
    check(trace[i].total_steps > 0, "job must have positive work");
    check(trace[i].demand_gpus > 0, "job must demand at least one GPU");
  }

  double now = 0.0;
  std::size_t next_arrival = 0;
  const double round = policy.round_interval_s();

  auto unfinished = [&] {
    for (const JobState& j : jobs)
      if (!j.finished()) return true;
    return false;
  };

  std::int64_t guard = 0;
  while (unfinished()) {
    check(++guard < 2'000'000, "simulator exceeded event budget (policy livelock?)");

    // ---- Next event time.
    double t_next = kInf;
    if (next_arrival < jobs.size())
      t_next = std::min(t_next, jobs[next_arrival].spec.arrival_s);
    if (round > 0.0) {
      const double tick = (std::floor(now / round + 1e-9) + 1.0) * round;
      t_next = std::min(t_next, tick);
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      JobState& j = jobs[i];
      if (!j.running()) continue;
      const double start = std::max(now, j.pause_until_s);
      t_next = std::min(t_next, start + j.remaining_steps * step_times[i]);
    }
    check(t_next < kInf,
          "scheduler stalled: queued work but no running jobs, arrivals, or rounds");
    t_next = std::max(t_next, now);

    // ---- Advance running jobs to t_next.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      JobState& j = jobs[i];
      if (!j.running()) continue;
      const double start = std::max(now, j.pause_until_s);
      const double dt = std::max(0.0, t_next - start);
      if (dt > 0.0) {
        const double steps = dt / step_times[i];
        const double tput = static_cast<double>(j.spec.global_batch) / step_times[i];
        j.attained_service +=
            dt * tput / reference_throughput(j.spec.profile, j.spec.global_batch);
        j.remaining_steps = std::max(0.0, j.remaining_steps - steps);
      }
    }
    now = t_next;

    // ---- Completions.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      JobState& j = jobs[i];
      if (!j.finished() && j.running() && j.remaining_steps <= kStepEps) {
        j.completion_s = now;
        close_segment(j, now, open_since[i]);
        j.alloc = Allocation{};
        step_times[i] = kInf;
      }
    }

    // ---- Arrivals.
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].spec.arrival_s <= now + 1e-9) {
      ++next_arrival;
    }

    // ---- Re-schedule.
    std::vector<const JobState*> active;
    std::vector<std::size_t> active_idx;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].arrived(now) && !jobs[i].finished()) {
        active.push_back(&jobs[i]);
        active_idx.push_back(i);
      }
    }
    if (active.empty()) continue;

    auto allocs = policy.schedule(cluster, active, now);
    validate_allocations(cluster, allocs);

    for (std::size_t k = 0; k < active.size(); ++k) {
      const std::size_t i = active_idx[k];
      JobState& j = jobs[i];
      Allocation next;
      const auto it = allocs.find(j.spec.id);
      if (it != allocs.end()) next = it->second;
      if (next == j.alloc) continue;

      close_segment(j, now, open_since[i]);
      const bool had_run = j.first_start_s >= 0.0;
      j.alloc = next;
      if (!next.empty()) {
        if (!had_run) {
          j.first_start_s = now;
        } else {
          // Changing an in-flight allocation costs a pause: VirtualFlow's
          // ~1 s all-gather, or a checkpoint-restart for baselines.
          ++j.resizes;
          j.pause_until_s = now + policy.resize_penalty_s();
        }
        open_since[i] = now;
        step_times[i] = allocation_step_time_s(j.spec.profile, j.spec.global_batch,
                                               j.alloc, link);
      } else {
        step_times[i] = kInf;
      }
    }
  }

  // ---- Metrics.
  SimResult result;
  result.jobs = std::move(jobs);
  double makespan = 0.0;
  double busy_gpu_time = 0.0;
  for (const JobState& j : result.jobs) {
    check(j.finished(), "job did not finish");
    makespan = std::max(makespan, j.completion_s);
    for (const AllocSegment& s : j.timeline)
      busy_gpu_time += static_cast<double>(s.alloc.total()) * (s.t1 - s.t0);
  }
  result.makespan_s = makespan;
  result.avg_utilization =
      busy_gpu_time / (static_cast<double>(cluster.total()) * std::max(makespan, 1e-9));
  return result;
}

}  // namespace vf
