#include "sched/gavel.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace vf {

GavelScheduler::GavelScheduler(GavelOptions options) : options_(options) {
  check(options.round_s > 0.0, "round duration must be positive");
}

std::map<std::int64_t, Allocation> GavelScheduler::schedule(
    const ClusterInventory& cluster, const std::vector<const JobState*>& jobs,
    double now) {
  // Mixed job sets: serving tenants are carved out of the pool before the
  // training round (minimums guaranteed; see carve_serving_grants), and —
  // unlike the round-cached training decision — re-carved at EVERY
  // consult: a latency SLO cannot wait for a round boundary. Mid-round
  // the carve draws only from what the cached training round left free,
  // so serving grows into idle capacity immediately but reclaims
  // training devices only at boundaries — the round contract intact. A
  // serving arrival or departure forces a fresh round (its minimum must
  // be honored now, and minimums are only guaranteed by a full carve).
  std::vector<const JobState*> train;
  std::vector<std::int64_t> serve_ids;
  for (const JobState* j : jobs) {
    if (j->is_serve()) {
      serve_ids.push_back(j->spec.id);
    } else {
      train.push_back(j);
    }
  }
  const bool serve_set_changed = serve_ids != last_serve_ids_;
  last_serve_ids_ = std::move(serve_ids);

  // Round-based: training allocations only change at round boundaries.
  // Between boundaries, return the cached decision restricted to
  // still-active jobs (a finished job's GPUs stay idle until the round
  // ends, exactly the slack the paper's elastic approaches exploit).
  if (!serve_set_changed && now + 1e-9 < next_recompute_s_) {
    std::map<std::int64_t, Allocation> out;
    ClusterInventory free = cluster;
    for (const JobState* j : train) {
      const auto it = cached_.find(j->spec.id);
      if (it != cached_.end()) {
        out[j->spec.id] = it->second;
        for (const auto& [type, count] : it->second.per_type)
          free.per_type[type] -= count;
      }
    }
    // A recover can raise a serving job's live minimum mid-round past
    // what the cached training round left free; that also forces a fresh
    // round rather than a carve that cannot honor the floor.
    std::int64_t serve_mins = 0;
    for (const JobState* j : jobs)
      if (j->is_serve()) serve_mins += j->live_min_gpus;
    if (serve_mins <= free.per_type[options_.serve_pool]) {
      auto serve_out = carve_serving_grants(free, jobs, options_.serve_pool);
      out.insert(serve_out.begin(), serve_out.end());
      return out;
    }
  }
  next_recompute_s_ =
      (std::floor(now / options_.round_s + 1e-9) + 1.0) * options_.round_s;
  ClusterInventory train_pool = cluster;
  auto serve_out = carve_serving_grants(train_pool, jobs, options_.serve_pool);
  cached_ = compute_round(train_pool, train);
  std::map<std::int64_t, Allocation> out = cached_;
  out.insert(serve_out.begin(), serve_out.end());
  return out;
}

std::map<std::int64_t, Allocation> GavelScheduler::compute_round(
    const ClusterInventory& cluster, const std::vector<const JobState*>& jobs) const {
  // Least attained (weighted) service first; ties by arrival then id.
  std::vector<const JobState*> order = jobs;
  std::sort(order.begin(), order.end(), [](const JobState* a, const JobState* b) {
    const double la = a->attained_service / a->spec.priority;
    const double lb = b->attained_service / b->spec.priority;
    if (la != lb) return la < lb;
    if (a->spec.arrival_s != b->spec.arrival_s) return a->spec.arrival_s < b->spec.arrival_s;
    return a->spec.id < b->spec.id;
  });

  std::map<DeviceType, std::int64_t> free = cluster.per_type;
  std::map<std::int64_t, Allocation> out;

  // Pass 1 (stock Gavel): each job gets its best single-type allocation
  // from what is left, at most its demand.
  for (const JobState* j : order) {
    Allocation best;
    double best_tput = 0.0;
    for (const auto& [type, avail] : free) {
      if (avail <= 0) continue;
      const std::int64_t count = std::min(j->spec.demand_gpus, avail);
      const Allocation cand = Allocation::of(type, count);
      const double tput =
          allocation_throughput(j->spec.profile, j->spec.global_batch, cand);
      if (tput > best_tput) {
        best_tput = tput;
        best = cand;
      }
    }
    if (!best.empty()) {
      for (const auto& [type, count] : best.per_type) free[type] -= count;
      out[j->spec.id] = best;
    }
  }

  if (!options_.heterogeneous_allocations) return out;

  // Pass 2 (+HT): in the same order, offer each job the leftover GPUs of
  // other types, keeping an addition only if it improves the job's
  // throughput by at least min_hetero_gain (VirtualFlow's solver fallback
  // behaviour: don't mix when mixing doesn't help).
  for (const JobState* j : order) {
    const auto it = out.find(j->spec.id);
    if (it == out.end()) continue;
    Allocation current = it->second;
    double current_tput =
        allocation_throughput(j->spec.profile, j->spec.global_batch, current);
    for (auto& [type, avail] : free) {
      if (avail <= 0 || current.per_type.count(type) != 0) continue;
      // Try the largest useful extra grant first, shrinking until it helps.
      for (std::int64_t extra = std::min(avail, j->spec.demand_gpus * 2); extra >= 1;
           extra /= 2) {
        Allocation cand = current;
        cand.per_type[type] = extra;
        const double tput =
            allocation_throughput(j->spec.profile, j->spec.global_batch, cand);
        if (tput >= current_tput * (1.0 + options_.min_hetero_gain)) {
          current = cand;
          current_tput = tput;
          avail -= extra;
          break;
        }
      }
    }
    it->second = current;
  }
  return out;
}

}  // namespace vf
