#include "sched/elastic.h"

#include <algorithm>

namespace vf::sched {

std::int64_t elastic_resize_target(std::int64_t queue_depth, std::int64_t inflight,
                                   std::int64_t cur_devices,
                                   std::int64_t high_watermark,
                                   std::int64_t low_watermark,
                                   std::int64_t min_devices,
                                   std::int64_t max_devices) {
  // Grow on SYSTEM load, symmetric with the shrink arm below. Queue depth
  // alone is blind under continuous batching: a burst is admitted straight
  // into in-flight slots, so the queue can sit under the high watermark
  // while every slot saturates — and decode streams make it worse, holding
  // slots for whole sequences. The in-flight term closes that blind spot.
  if (queue_depth + inflight >= high_watermark && cur_devices < max_devices)
    return std::min(cur_devices * 2, max_devices);
  if (queue_depth + inflight <= low_watermark && cur_devices > min_devices)
    return std::max(cur_devices / 2, min_devices);
  return cur_devices;
}

}  // namespace vf::sched
