// Trace generation: the paper's Table 3 workload mix and Poisson arrivals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/job.h"

namespace vf {

/// One entry of the Table 3 workload mix: a (model, dataset) pair with the
/// batch sizes the paper sampled for it.
struct WorkloadMixEntry {
  std::string workload;                 ///< model-profile name
  std::string task;                     ///< proxy-task name ("" = none)
  std::vector<std::int64_t> batch_sizes;///< Table 3 "Batch sizes" column
  std::int64_t demand_gpus = 1;
  std::int64_t base_steps = 600;        ///< nominal job length in steps
};

/// The Table 3 mix (ResNet-56/cifar10, ResNet-50/ImageNet, BERT-BASE on
/// CoLA and SST-2, Transformer/WMT).
const std::vector<WorkloadMixEntry>& table3_mix();

/// Options for Poisson trace generation (§6.4.2: 20 jobs, 12 jobs/hour,
/// priorities drawn from {1, 5, 10}).
struct TraceOptions {
  std::int64_t num_jobs = 20;
  double jobs_per_hour = 12.0;
  std::uint64_t seed = 1;
  /// Scales job lengths ("we train each job for only a subset of the
  /// steps or epochs needed for convergence").
  double steps_scale = 1.0;
  /// Restrict sampling to these workload names (empty = full Table 3 mix).
  /// The Gavel experiments draw from "a subset of the workloads in
  /// Table 3" (§6.5.2) — the compute-heavy, large-batch ones.
  std::vector<std::string> workloads;
};

/// Samples a trace: exponential interarrivals, workloads uniform over the
/// mix, batch size uniform over the entry's options, priority from
/// {1, 5, 10}.
std::vector<JobSpec> poisson_trace(const TraceOptions& options);

}  // namespace vf
