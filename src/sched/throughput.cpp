#include "sched/throughput.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "device/cost_model.h"
#include "device/memory_model.h"
#include "util/common.h"

namespace vf {

std::int64_t Allocation::total() const {
  std::int64_t n = 0;
  for (const auto& [t, c] : per_type) n += c;
  return n;
}

bool Allocation::heterogeneous() const {
  std::int64_t types = 0;
  for (const auto& [t, c] : per_type)
    if (c > 0) ++types;
  return types > 1;
}

std::string Allocation::describe() const {
  if (empty()) return "(none)";
  std::string s;
  for (const auto& [t, c] : per_type) {
    if (c == 0) continue;
    if (!s.empty()) s += "+";
    s += std::to_string(c) + "x" + device_type_name(t);
  }
  return s;
}

Allocation Allocation::of(DeviceType t, std::int64_t count) {
  Allocation a;
  if (count > 0) a.per_type[t] = count;
  return a;
}

namespace {

/// Local step time of one GPU of `type` processing `local_batch` examples,
/// folded into the fewest VNs that fit memory.
double local_step_time(DeviceType type, const ModelProfile& profile,
                       double local_batch) {
  const DeviceSpec& spec = device_spec(type);
  const std::int64_t frontier = max_micro_batch(spec, profile, /*use_grad_buffer=*/true);
  check(frontier > 0, "workload " + profile.name + " does not fit on " + spec.name);
  const double b = std::max(1.0, local_batch);
  const auto vns = static_cast<std::int64_t>(
      std::ceil(b / static_cast<double>(frontier)));
  const auto per_vn = static_cast<std::int64_t>(
      std::max(1.0, std::round(b / static_cast<double>(vns))));
  std::vector<std::int64_t> batches(static_cast<std::size_t>(vns), per_vn);
  return device_step_time_s(spec, profile, batches);
}

/// Single-GPU steady throughput at a healthy batch (used for the balanced
/// heterogeneous split and the LAS normalization).
double unit_speed(DeviceType type, const ModelProfile& profile) {
  const DeviceSpec& spec = device_spec(type);
  const std::int64_t frontier = max_micro_batch(spec, profile, true);
  check(frontier > 0, "workload does not fit on " + spec.name);
  return device_throughput(spec, profile, frontier, 1);
}

}  // namespace

double allocation_step_time_s(const ModelProfile& profile, std::int64_t global_batch,
                              const Allocation& alloc, const LinkSpec& link) {
  check(global_batch > 0, "global batch must be positive");
  const std::int64_t world = alloc.total();
  if (world == 0) return std::numeric_limits<double>::infinity();

  const double comm =
      world > 1 ? ring_allreduce_time_s(profile.param_bytes(), world, link) : 0.0;

  if (!alloc.heterogeneous()) {
    for (const auto& [type, count] : alloc.per_type) {
      if (count == 0) continue;
      const double local = static_cast<double>(global_batch) / static_cast<double>(count);
      return local_step_time(type, profile, local) + comm;
    }
  }

  // Heterogeneous: balanced split — per-GPU share proportional to the
  // type's unit speed, so all types finish together on the continuous
  // grid; the realized time is the max over types (quantization makes it
  // slightly uneven, as in the real system).
  double total_speed = 0.0;
  for (const auto& [type, count] : alloc.per_type)
    total_speed += static_cast<double>(count) * unit_speed(type, profile);
  check(total_speed > 0.0, "allocation has no usable capacity");

  double worst = 0.0;
  for (const auto& [type, count] : alloc.per_type) {
    if (count == 0) continue;
    const double per_gpu = static_cast<double>(global_batch) *
                           unit_speed(type, profile) / total_speed;
    worst = std::max(worst, local_step_time(type, profile, per_gpu));
  }
  return worst + comm;
}

double allocation_throughput(const ModelProfile& profile, std::int64_t global_batch,
                             const Allocation& alloc, const LinkSpec& link) {
  if (alloc.empty()) return 0.0;
  return static_cast<double>(global_batch) /
         allocation_step_time_s(profile, global_batch, alloc, link);
}

double reference_throughput(const ModelProfile& profile, std::int64_t global_batch) {
  return allocation_throughput(profile, global_batch,
                               Allocation::of(DeviceType::kV100, 1));
}

}  // namespace vf
