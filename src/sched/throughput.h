// Job throughput estimation under arbitrary (typed, possibly mixed)
// allocations. Shared by every scheduler: the elastic WFS scheduler prices
// resizes with it, and Gavel(+HT) uses it both to pick allocations and to
// advance simulated progress.
#pragma once

#include <cstdint>

#include "comm/comm.h"
#include "sched/job.h"

namespace vf {

/// Step time of `profile` training at `global_batch` under `alloc`.
///
/// Homogeneous allocations split the batch evenly; the per-GPU batch is
/// folded into the fewest virtual nodes that fit the device's memory.
/// Heterogeneous allocations split the batch in proportion to per-GPU
/// effective speed (the balanced split the heterogeneous solver would
/// choose on a continuous grid) and are bottlenecked by the slowest type.
/// Returns +inf for an empty allocation.
double allocation_step_time_s(const ModelProfile& profile, std::int64_t global_batch,
                              const Allocation& alloc, const LinkSpec& link = {});

/// Examples per second under `alloc` (0 for an empty allocation).
double allocation_throughput(const ModelProfile& profile, std::int64_t global_batch,
                             const Allocation& alloc, const LinkSpec& link = {});

/// Throughput of the job's best single-V100 configuration; the LAS
/// normalization unit (one "fair GPU" of service).
double reference_throughput(const ModelProfile& profile, std::int64_t global_batch);

}  // namespace vf
