// Job and allocation model for the cluster-scheduling experiments (§4.2,
// §6.4, §6.5.2).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "device/model_profile.h"
#include "device/spec.h"

namespace vf {

/// A (possibly heterogeneous) GPU allocation: device type -> count.
struct Allocation {
  std::map<DeviceType, std::int64_t> per_type;

  std::int64_t total() const;
  bool empty() const { return total() == 0; }
  bool heterogeneous() const;
  bool operator==(const Allocation& other) const { return per_type == other.per_type; }
  std::string describe() const;

  static Allocation of(DeviceType t, std::int64_t count);
};

/// Static description of one job in a trace.
struct JobSpec {
  std::int64_t id = 0;
  double arrival_s = 0.0;
  double priority = 1.0;       ///< WFS weight (paper uses 1 / 5 / 10)
  std::string workload;        ///< model-profile name (drives the cost model)
  std::string task;            ///< proxy-task name (for accuracy replay), may be ""
  ModelProfile profile;
  std::int64_t global_batch = 0;
  std::int64_t total_steps = 0;  ///< training work
  std::int64_t demand_gpus = 0;  ///< requested allocation size
};

/// One segment of a job's allocation timeline (for Figs 10, 11, 16).
struct AllocSegment {
  double t0 = 0.0, t1 = 0.0;
  Allocation alloc;
};

/// Mutable job state tracked by the event simulator.
struct JobState {
  JobSpec spec;
  double remaining_steps = 0.0;
  Allocation alloc;            ///< empty when queued or fully preempted
  double first_start_s = -1.0;
  double completion_s = -1.0;
  double pause_until_s = 0.0;  ///< resize/restart penalty in effect until then
  double attained_service = 0.0;  ///< normalized service for LAS policies
  std::int64_t resizes = 0;
  std::vector<AllocSegment> timeline;

  bool arrived(double now) const { return spec.arrival_s <= now; }
  bool finished() const { return completion_s >= 0.0; }
  bool running() const { return !finished() && !alloc.empty(); }
};

}  // namespace vf
