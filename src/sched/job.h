// Job and allocation model for the cluster-scheduling experiments (§4.2,
// §6.4, §6.5.2).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "device/model_profile.h"
#include "device/spec.h"

namespace vf {

/// A (possibly heterogeneous) GPU allocation: device type -> count.
struct Allocation {
  std::map<DeviceType, std::int64_t> per_type;

  std::int64_t total() const;
  bool empty() const { return total() == 0; }
  bool heterogeneous() const;
  bool operator==(const Allocation& other) const { return per_type == other.per_type; }
  std::string describe() const;

  static Allocation of(DeviceType t, std::int64_t count);
};

/// What kind of tenant a job is. Training jobs run a fixed amount of work
/// (total_steps) and finish; serving jobs are elastic device-sets that
/// live while their request trace drains, with a demand that moves with
/// load (JobState::desired_gpus) instead of a static demand_gpus.
enum class JobKind { kTrain, kServe };

/// Static description of one job in a trace.
struct JobSpec {
  std::int64_t id = 0;
  JobKind kind = JobKind::kTrain;
  double arrival_s = 0.0;
  double priority = 1.0;       ///< WFS weight (paper uses 1 / 5 / 10)
  std::string workload;        ///< model-profile name (drives the cost model)
  std::string task;            ///< proxy-task name (for accuracy replay), may be ""
  ModelProfile profile;
  std::int64_t global_batch = 0;
  std::int64_t total_steps = 0;  ///< training work
  std::int64_t demand_gpus = 0;  ///< train: requested size; serve: static-partition size
  /// Serving jobs only: the elastic range the device-set may be granted.
  /// A policy must keep an active serving job within [min_gpus, max_gpus]
  /// (the latency-critical floor and the VN-count ceiling).
  std::int64_t min_gpus = 0;
  std::int64_t max_gpus = 0;
};

/// One segment of a job's allocation timeline (for Figs 10, 11, 16).
struct AllocSegment {
  double t0 = 0.0, t1 = 0.0;
  Allocation alloc;
};

/// Mutable job state tracked by the event simulator / cluster controller.
struct JobState {
  JobSpec spec;
  double remaining_steps = 0.0;
  Allocation alloc;            ///< empty when queued or fully preempted
  double first_start_s = -1.0;
  double completion_s = -1.0;
  double pause_until_s = 0.0;  ///< resize/restart penalty in effect until then
  double attained_service = 0.0;  ///< normalized service for LAS policies
  std::int64_t resizes = 0;
  std::vector<AllocSegment> timeline;

  // Serving-job dynamics, refreshed by the ClusterController from the
  // lease's load signal before every policy consult. `desired_gpus` is
  // the controller's derived target (elastic_resize_target over
  // queue+in-flight load, escalated by SLO deadline pressure);
  // live_min/live_max are the spec bounds tightened by transient capacity
  // loss (a killed device caps the ceiling until its recover).
  std::int64_t desired_gpus = 0;
  std::int64_t live_min_gpus = 0;
  std::int64_t live_max_gpus = 0;
  /// Fraction of the SLO budget the oldest queued request has burned
  /// (0 when idle; > 1 means a deadline is already blown). Policies may
  /// read it as urgency; the controller exports it as a gauge.
  double slo_pressure = 0.0;

  bool is_serve() const { return spec.kind == JobKind::kServe; }
  bool arrived(double now) const { return spec.arrival_s <= now; }
  bool finished() const { return completion_s >= 0.0; }
  bool running() const { return !finished() && !alloc.empty(); }
};

}  // namespace vf
