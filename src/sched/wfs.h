// Elastic Weighted-Fair-Sharing scheduler (paper §4.2, Algorithm 1) and
// the static Priority baseline it is evaluated against (§6.4).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sched/simulator.h"

namespace vf {

/// Integer weighted fair shares: distributes `total` GPUs proportionally
/// to job weights, capping each job at its demand (water-filling) and
/// resolving fractional remainders largest-first (priority, then lower id,
/// as the deterministic tie-break). Exposed for direct unit testing.
std::map<std::int64_t, std::int64_t> weighted_fair_shares(
    std::int64_t total, const std::vector<const JobState*>& jobs);

/// Elastic WFS (Algorithm 1): dynamically resizes running jobs to their
/// weighted fair shares, admitting queued jobs only while doing so does
/// not shrink any higher-priority job's allocation. Resizing is seamless
/// (virtual-node redistribution, ~1 s pause).
///
/// The cluster is treated as a homogeneous pool of `pool_type` GPUs (the
/// paper's elasticity experiments run on V100s only).
///
/// Mixed job sets: serving jobs (JobKind::kServe) are carved out first —
/// live minimums guaranteed, load-derived desires round-robined — and
/// training water-fills the remainder (carve_serving_grants). Being
/// event-based, WFS re-derives the carve at every consult, so serving
/// grants track bursts at controller-event granularity.
class ElasticWfsScheduler : public Scheduler {
 public:
  explicit ElasticWfsScheduler(DeviceType pool_type = DeviceType::kV100);

  std::map<std::int64_t, Allocation> schedule(
      const ClusterInventory& cluster, const std::vector<const JobState*>& jobs,
      double now) override;

  double resize_penalty_s() const override { return 1.0; }  // §4.1 all-gather
  std::string name() const override { return "elastic-wfs"; }

 private:
  DeviceType pool_type_;
  // Jobs admitted to the running set so far (Algorithm 1's running_jobs).
  std::vector<std::int64_t> admitted_;
};

/// Static priority scheduler: starts the highest-priority queued job when
/// its *full* demand fits in the free pool; never resizes or preempts.
class PriorityScheduler : public Scheduler {
 public:
  explicit PriorityScheduler(DeviceType pool_type = DeviceType::kV100);

  std::map<std::int64_t, Allocation> schedule(
      const ClusterInventory& cluster, const std::vector<const JobState*>& jobs,
      double now) override;

  std::string name() const override { return "priority-static"; }

 private:
  DeviceType pool_type_;
};

}  // namespace vf
