// ClusterController — one device economy for training AND serving.
//
// Before this layer, the allocation decision lived in two places: the
// Scheduler policies sized training jobs inside simulate(), and each
// serving loop sized itself with a private elastic_resize_target rule.
// The controller pulls both under ONE pluggable policy:
//
//   ClusterInventory (shared pool)
//        |
//   ClusterController ── event loop on the virtual clock
//        |     analytic training jobs (simulate()'s advancement math)
//        |     + live DeviceLease holders (Server, ColocatedServer,
//        |       EngineTrainLease) pumped between events
//        v
//   Scheduler policy (gavel, WFS, priority, static-partition decorator)
//        |     sees serving device-sets as first-class JobState entries:
//        |     desired/min/max derived from the lease's load signal, SLO
//        |     deadline pressure as urgency
//        v
//   device GRANTS ── applied through DeviceLease::apply_grant (the same
//                    seamless/rolling-migration resize paths underneath)
//
// elastic_resize_target is demoted from the decision-maker to one load
// signal among several: the controller derives each serving job's
// desired_gpus from it, escalates under deadline pressure (an oldest
// request past half its SLO budget asks for double the devices), and the
// policy arbitrates those desires against training demand.
//
// Determinism contract: the controller is an event loop on the virtual
// clock, exactly like simulate() — leases are pumped in add-order at each
// event, the policy consulted at arrivals/completions/round-ticks/lease
// events, grants applied in job-id order. Every decision is a pure
// function of (job specs, traces, policy, cost model), so a full cluster
// run — hundreds of devices, mixed train+serve — replays bit-identically
// across host worker counts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "comm/comm.h"
#include "core/engine.h"
#include "obs/obs.h"
#include "sched/job.h"
#include "sched/lease.h"
#include "sched/simulator.h"

namespace vf {

/// Controller configuration.
struct ClusterOptions {
  /// Prices gradient synchronization in analytic training throughput.
  LinkSpec link;
  /// > 0 inserts a policy consult every interval while any lease is
  /// active, on top of the event-driven consults (arrivals, completions,
  /// lease events, policy round ticks). 0 (default) stays purely
  /// event-driven — serving load changes only at lease events, so extra
  /// ticks add cost without information.
  double reeval_interval_s = 0.0;
  /// Event budget; exceeded means a policy/lease livelock. Fails loudly.
  std::int64_t max_events = 2'000'000;
};

/// One device grant the controller issued to a lease holder.
struct GrantRecord {
  double time_s = 0.0;
  std::int64_t job_id = 0;
  std::int64_t from_devices = 0;
  std::int64_t to_devices = 0;
  double migration_s = 0.0;  ///< seamless/rolling migration charge
};

/// Result of one cluster run.
struct ClusterReport {
  std::vector<JobState> jobs;        ///< final states, add order
  double train_makespan_s = 0.0;     ///< last training completion
  double end_s = 0.0;                ///< final controller clock
  std::vector<GrantRecord> grants;   ///< every lease resize, in issue order
};

/// Drives a mixed train+serve job set over a shared inventory, asking the
/// policy for allocations at each event and issuing device grants through
/// the DeviceLease interface. One run per controller.
class ClusterController {
 public:
  /// `policy` must outlive the controller; `cluster` is the shared pool
  /// the policy allocates from (validated against on every consult).
  ClusterController(ClusterInventory cluster, Scheduler& policy,
                    ClusterOptions options = {});

  /// Attaches observability sinks before run(): "sched.*" counters/gauges
  /// (policy_calls, grants, per-class device gauges) plus one "grant"
  /// instant per issued grant on the control track.
  void set_observability(obs::Observability obs);

  /// Adds an analytic training job (simulate()-style advancement: step
  /// times from the cost model, attained service for LAS policies, resize
  /// penalties as pauses). Ids must be unique across all added jobs.
  void add_train_job(JobSpec spec);

  /// Adds a live serving device-set. `spec.kind` must be kServe with
  /// min_gpus >= 1 and max_gpus >= min_gpus; spec.demand_gpus records the
  /// static-partition size baselines pin it to. The lease must be
  /// cluster-governed and begun (Server::set_cluster_governed() +
  /// begin()) before run(), and must outlive the controller. The job is
  /// active from spec.arrival_s until the lease drains; call the
  /// holder's finish() after run() to export its summary metrics.
  void add_serve_job(JobSpec spec, sched::DeviceLease& lease);

  /// Adds a REAL training engine as a lease (EngineTrainLease): the
  /// engine steps on the virtual clock between events and consumes grants
  /// through the same interface as serving. `spec.kind` must be kTrain;
  /// total_steps is taken from the spec.
  void add_train_lease(JobSpec spec, sched::DeviceLease& lease);

  /// Runs the whole job set to completion: every training job finished,
  /// every serving lease drained. Throws VfError on a buggy policy
  /// (over-commit, serve grant outside [live_min, live_max]) or livelock.
  ClusterReport run();

 private:
  enum class Backing { kAnalytic, kTrainLease, kServeLease };

  struct Tenant {
    JobState state;
    Backing backing = Backing::kAnalytic;
    sched::DeviceLease* lease = nullptr;  ///< null for analytic jobs
    double step_time_s = 0.0;             ///< analytic: current step time
    double open_since_s = -1.0;           ///< open timeline segment start
    bool retired = false;                 ///< lease drained and released
  };

  void add_tenant(JobSpec spec, Backing backing, sched::DeviceLease* lease);
  void advance_analytic(double now, double t_next);
  void refresh_from_leases(double now);
  double next_event(double now) const;
  void consult_policy(double now);
  void apply_train_alloc(Tenant& t, const Allocation& next, double now);
  void grant(Tenant& t, const Allocation& next, double now);

  ClusterInventory cluster_;
  Scheduler& policy_;
  ClusterOptions options_;
  obs::Observability obs_;
  std::vector<Tenant> tenants_;
  std::vector<GrantRecord> grants_;
  bool ran_ = false;
};

/// Static-partition baseline: pins every serving job at its configured
/// spec.demand_gpus (clamped into the live [min, max] band, so a device
/// kill still caps it) and lets `inner` schedule training over the
/// REDUCED inventory. This is the "two static clusters" deployment the
/// co-scheduled economy is benchmarked against (bench_cosched).
class StaticPartitionScheduler : public Scheduler {
 public:
  /// `inner` must outlive this decorator.
  StaticPartitionScheduler(Scheduler& inner, DeviceType pool_type);

  std::map<std::int64_t, Allocation> schedule(
      const ClusterInventory& cluster, const std::vector<const JobState*>& jobs,
      double now) override;

  double round_interval_s() const override { return inner_.round_interval_s(); }
  double resize_penalty_s() const override { return inner_.resize_penalty_s(); }
  std::string name() const override { return "static(" + inner_.name() + ")"; }

 private:
  Scheduler& inner_;
  DeviceType pool_type_;
};

/// Adapts a real VirtualFlowEngine to the DeviceLease protocol so the
/// cluster policy sizes live training the same way it sizes serving.
/// pump() runs whole train_steps until the engine's clock (offset onto
/// the controller clock across full preemptions) passes the horizon.
/// Unlike serving leases, apply_grant(0) is legal and means FULL
/// PREEMPTION: the engine keeps its last device set but steps stop until
/// a positive re-grant (which also re-bases the clock offset).
class EngineTrainLease : public sched::DeviceLease {
 public:
  /// The engine must outlive the lease. `pool_type` is the device type
  /// grants are filled with; `total_steps` the training work to run.
  EngineTrainLease(VirtualFlowEngine& engine, std::int64_t total_steps,
                   DeviceType pool_type);

  double next_event_s() const override;
  void pump(double horizon_s) override;
  sched::LoadSignal load() const override;
  double apply_grant(std::int64_t devices) override;
  bool drained() const override { return steps_done_ >= total_steps_; }

  std::int64_t steps_done() const { return steps_done_; }

 private:
  double clock_now() const;  ///< engine sim time on the controller clock

  VirtualFlowEngine& engine_;
  std::int64_t total_steps_;
  DeviceType pool_type_;
  std::int64_t steps_done_ = 0;
  std::int64_t granted_ = 0;     ///< 0 = fully preempted (no stepping)
  double clock_offset_ = 0.0;    ///< controller time = engine time + offset
  double clock_ = 0.0;           ///< last pumped horizon
};

}  // namespace vf
