// Shared elastic device-budget rule for the serving paths.
//
// Both the single-model vf::serve::Server and the multi-model
// ColocatedServer size their device set with the same load hysteresis:
// grow (double) when the *system* load — backlog plus in-flight requests
// — reaches the high watermark, shrink (halve) when it falls to the low
// watermark. Keeping the rule in one pure function is
// what lets the co-located arbiter drive a shared budget from combined
// per-model loads without re-deriving (and re-bugging) the hysteresis:
// the shrink side must see in-flight work, because mid-burst the queue
// empties the instant a full batch is admitted into slots, and shrinking
// on that illusion of idleness oscillates the device set under steady
// pressure (a 13%-of-throughput bug before PR 3 fixed it).
//
// Determinism contract: a pure function of its integer inputs — no clock,
// no host state — so every replay decision is replayable bit-for-bit.
#pragma once

#include <cstdint>

namespace vf::sched {

/// Returns the device count the elastic loop should run next: `cur_devices`
/// when no change is warranted, otherwise the doubled (capped at
/// `max_devices`) or halved (floored at `min_devices`) count. Both arms
/// act on the SYSTEM load `queue_depth + inflight`: growth triggers when
/// it reaches `high_watermark`, shrink when it has drained to
/// `low_watermark` (batch-boundary callers pass inflight = 0 — at their
/// decision points nothing is in flight, so for them both arms reduce to
/// queue depth). Growing on queue depth alone was a blind spot under
/// continuous batching: a burst is admitted straight into in-flight slots,
/// so the queue stays shallow while the slots — and, with token streams,
/// whole sequences' worth of slot time — saturate. Watermarks must satisfy
/// high > low (callers validate once at construction).
std::int64_t elastic_resize_target(std::int64_t queue_depth, std::int64_t inflight,
                                   std::int64_t cur_devices,
                                   std::int64_t high_watermark,
                                   std::int64_t low_watermark,
                                   std::int64_t min_devices,
                                   std::int64_t max_devices);

}  // namespace vf::sched
