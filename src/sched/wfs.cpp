#include "sched/wfs.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace vf {

std::map<std::int64_t, std::int64_t> weighted_fair_shares(
    std::int64_t total, const std::vector<const JobState*>& jobs) {
  check(total >= 0, "total GPUs must be non-negative");
  std::map<std::int64_t, std::int64_t> out;
  if (jobs.empty()) return out;

  // Water-filling over real-valued shares: repeatedly hand uncapped jobs
  // their weight-proportional slice; jobs that would exceed their demand
  // are frozen at the demand and removed from the pool.
  std::map<std::int64_t, double> share;
  std::vector<const JobState*> uncapped = jobs;
  double remaining = static_cast<double>(total);
  while (!uncapped.empty() && remaining > 1e-9) {
    double weight_sum = 0.0;
    for (const JobState* j : uncapped) weight_sum += j->spec.priority;
    bool any_capped = false;
    std::vector<const JobState*> next;
    for (const JobState* j : uncapped) {
      const double slice = remaining * j->spec.priority / weight_sum;
      const double cap = static_cast<double>(j->spec.demand_gpus);
      if (slice >= cap) {
        share[j->spec.id] = cap;
        any_capped = true;
      } else {
        next.push_back(j);
      }
    }
    if (!any_capped) {
      for (const JobState* j : next)
        share[j->spec.id] = remaining * j->spec.priority / weight_sum;
      break;
    }
    double used = 0.0;
    for (const auto& [id, s] : share) used += s;
    remaining = static_cast<double>(total) - used;
    uncapped = std::move(next);
  }

  // Integerize: floors first, then hand out remainders by largest
  // fractional part (priority, then id, break ties deterministically).
  std::int64_t used = 0;
  std::vector<std::pair<double, const JobState*>> fracs;
  for (const JobState* j : jobs) {
    const double s = share.count(j->spec.id) ? share[j->spec.id] : 0.0;
    const auto fl = static_cast<std::int64_t>(std::floor(s + 1e-9));
    out[j->spec.id] = fl;
    used += fl;
    fracs.push_back({s - static_cast<double>(fl), j});
  }
  std::sort(fracs.begin(), fracs.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    if (a.second->spec.priority != b.second->spec.priority)
      return a.second->spec.priority > b.second->spec.priority;
    return a.second->spec.id < b.second->spec.id;
  });
  for (const auto& [frac, j] : fracs) {
    if (used >= total) break;
    if (out[j->spec.id] < j->spec.demand_gpus) {
      ++out[j->spec.id];
      ++used;
    }
  }
  return out;
}

// -------------------------------------------------- ElasticWfsScheduler

ElasticWfsScheduler::ElasticWfsScheduler(DeviceType pool_type) : pool_type_(pool_type) {}

std::map<std::int64_t, Allocation> ElasticWfsScheduler::schedule(
    const ClusterInventory& cluster, const std::vector<const JobState*>& jobs,
    double /*now*/) {
  const auto it = cluster.per_type.find(pool_type_);
  check(it != cluster.per_type.end(), "cluster has no GPUs of the WFS pool type");

  // Mixed job sets: serving device-sets are latency-critical tenants, so
  // they carve their load-derived grants out of the pool first (minimums
  // guaranteed, headroom round-robined — see carve_serving_grants) and
  // the training jobs water-fill over what remains. Event-based like the
  // rest of WFS: every consult re-derives the carve from live load.
  ClusterInventory rest = cluster;
  std::map<std::int64_t, Allocation> serve_out =
      carve_serving_grants(rest, jobs, pool_type_);
  const std::int64_t total = rest.per_type[pool_type_];
  std::vector<const JobState*> train;
  for (const JobState* j : jobs)
    if (!j->is_serve()) train.push_back(j);

  // Algorithm 1, line 2: current running set, dropping finished jobs.
  std::vector<const JobState*> running;
  std::vector<const JobState*> queued;
  for (const JobState* j : train) {
    const bool was_admitted =
        std::find(admitted_.begin(), admitted_.end(), j->spec.id) != admitted_.end();
    (was_admitted ? running : queued).push_back(j);
  }
  // Queue orders by priority (desc), then arrival, then id.
  std::sort(queued.begin(), queued.end(), [](const JobState* a, const JobState* b) {
    if (a->spec.priority != b->spec.priority) return a->spec.priority > b->spec.priority;
    if (a->spec.arrival_s != b->spec.arrival_s) return a->spec.arrival_s < b->spec.arrival_s;
    return a->spec.id < b->spec.id;
  });

  auto current = weighted_fair_shares(total, running);

  // Algorithm 1, lines 3-9: admit the next queued job only if the
  // resulting fair shares do not shrink any strictly-higher-priority
  // running job's allocation.
  for (const JobState* cand : queued) {
    std::vector<const JobState*> with = running;
    with.push_back(cand);
    auto fair = weighted_fair_shares(total, with);
    bool hurts_higher = false;
    for (const JobState* r : running) {
      if (r->spec.priority > cand->spec.priority &&
          fair[r->spec.id] < current[r->spec.id]) {
        hurts_higher = true;
        break;
      }
    }
    if (hurts_higher || fair[cand->spec.id] == 0) break;
    running = std::move(with);
    current = std::move(fair);
    admitted_.push_back(cand->spec.id);
  }

  std::map<std::int64_t, Allocation> out = std::move(serve_out);
  for (const auto& [id, gpus] : current)
    if (gpus > 0) out[id] = Allocation::of(pool_type_, gpus);
  return out;
}

// ----------------------------------------------------- PriorityScheduler

PriorityScheduler::PriorityScheduler(DeviceType pool_type) : pool_type_(pool_type) {}

std::map<std::int64_t, Allocation> PriorityScheduler::schedule(
    const ClusterInventory& cluster, const std::vector<const JobState*>& jobs,
    double /*now*/) {
  const auto it = cluster.per_type.find(pool_type_);
  check(it != cluster.per_type.end(), "cluster has no GPUs of the pool type");

  // Serving tenants carve first (they are elastic even under a static
  // training baseline — the training side is what "static" refers to).
  ClusterInventory rest = cluster;
  std::map<std::int64_t, Allocation> out =
      carve_serving_grants(rest, jobs, pool_type_);
  std::int64_t free = rest.per_type[pool_type_];

  // Running jobs keep their full demand (no resizing, no preemption).
  std::vector<const JobState*> queued;
  for (const JobState* j : jobs) {
    if (j->is_serve()) continue;
    if (j->running()) {
      out[j->spec.id] = Allocation::of(pool_type_, j->spec.demand_gpus);
      free -= j->spec.demand_gpus;
    } else {
      queued.push_back(j);
    }
  }
  check(free >= 0, "priority scheduler invariant violated");

  std::sort(queued.begin(), queued.end(), [](const JobState* a, const JobState* b) {
    if (a->spec.priority != b->spec.priority) return a->spec.priority > b->spec.priority;
    if (a->spec.arrival_s != b->spec.arrival_s) return a->spec.arrival_s < b->spec.arrival_s;
    return a->spec.id < b->spec.id;
  });
  // Strict priority order: the head of the queue blocks lower-priority
  // jobs (no backfilling), which is what leaves GPUs idle in Fig 10b.
  for (const JobState* j : queued) {
    if (j->spec.demand_gpus > free) break;
    out[j->spec.id] = Allocation::of(pool_type_, j->spec.demand_gpus);
    free -= j->spec.demand_gpus;
  }
  return out;
}

}  // namespace vf
