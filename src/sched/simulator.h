// Event-driven cluster simulator.
//
// Advances simulated time between scheduling events (job arrivals,
// completions, and — for round-based policies like Gavel — periodic round
// boundaries), asking the policy for fresh allocations at each event.
// Allocation changes cost time: a seamless VirtualFlow resize pauses the
// job for ~1 s (the §4.1 all-gather), while restart-based baselines pay a
// checkpoint-restore penalty, matching the paper's comparison axis.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "comm/comm.h"
#include "sched/job.h"
#include "sched/throughput.h"

namespace vf {

/// Typed GPU inventory of the simulated cluster.
struct ClusterInventory {
  std::map<DeviceType, std::int64_t> per_type;
  std::int64_t total() const;
};

/// Scheduling policy interface.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Returns the desired allocation for every *arrived, unfinished* job
  /// (jobs omitted from the result are left queued/preempted with no
  /// GPUs). Must never over-commit the inventory.
  virtual std::map<std::int64_t, Allocation> schedule(
      const ClusterInventory& cluster, const std::vector<const JobState*>& jobs,
      double now) = 0;

  /// > 0 for round-based policies (Gavel): the simulator inserts a
  /// scheduling event every interval even without arrivals/completions.
  virtual double round_interval_s() const { return 0.0; }

  /// Seconds a job is paused when its allocation changes. VirtualFlow's
  /// elastic resize is ~1 s; checkpoint-restart baselines take longer.
  virtual double resize_penalty_s() const { return 1.0; }

  virtual std::string name() const = 0;
};

/// Result of simulating one trace under one policy.
struct SimResult {
  std::vector<JobState> jobs;      ///< final states, trace order
  double makespan_s = 0.0;         ///< last completion time
  double avg_utilization = 0.0;    ///< busy GPU-time / (total GPUs x makespan)

  std::vector<double> jcts() const;            ///< completion - arrival
  std::vector<double> queueing_delays() const; ///< first start - arrival
};

/// Runs the trace to completion. `link` prices gradient synchronization in
/// each job's throughput.
SimResult simulate(const ClusterInventory& cluster, std::vector<JobSpec> trace,
                   Scheduler& policy, const LinkSpec& link = {});

}  // namespace vf
