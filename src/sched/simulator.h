// Event-driven cluster simulator.
//
// Advances simulated time between scheduling events (job arrivals,
// completions, and — for round-based policies like Gavel — periodic round
// boundaries), asking the policy for fresh allocations at each event.
// Allocation changes cost time: a seamless VirtualFlow resize pauses the
// job for ~1 s (the §4.1 all-gather), while restart-based baselines pay a
// checkpoint-restore penalty, matching the paper's comparison axis.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "comm/comm.h"
#include "sched/job.h"
#include "sched/throughput.h"

namespace vf {

/// Typed GPU inventory of the simulated cluster.
struct ClusterInventory {
  std::map<DeviceType, std::int64_t> per_type;
  std::int64_t total() const;
};

/// Scheduling policy interface.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Returns the desired allocation for every *arrived, unfinished* job
  /// (jobs omitted from the result are left queued/preempted with no
  /// GPUs). Must never over-commit the inventory — both simulate() and
  /// the ClusterController enforce this with validate_allocations() and
  /// fail loudly on a buggy policy.
  ///
  /// Mixed job sets: `jobs` may contain serving jobs (JobKind::kServe)
  /// alongside training jobs. A policy that supports co-scheduling must
  /// grant every active serving job a count within
  /// [live_min_gpus, live_max_gpus] (desired_gpus is the load-derived
  /// target); gavel and WFS carve serving first and arbitrate training
  /// over the remainder. Policies that predate serving can check() that
  /// no serve jobs are present.
  virtual std::map<std::int64_t, Allocation> schedule(
      const ClusterInventory& cluster, const std::vector<const JobState*>& jobs,
      double now) = 0;

  /// > 0 for round-based policies (Gavel): the simulator inserts a
  /// scheduling event every interval even without arrivals/completions.
  virtual double round_interval_s() const { return 0.0; }

  /// Seconds a job is paused when its allocation changes. VirtualFlow's
  /// elastic resize is ~1 s; checkpoint-restart baselines take longer.
  virtual double resize_penalty_s() const { return 1.0; }

  virtual std::string name() const = 0;
};

/// Result of simulating one trace under one policy.
struct SimResult {
  std::vector<JobState> jobs;      ///< final states, trace order
  double makespan_s = 0.0;         ///< last completion time
  double avg_utilization = 0.0;    ///< busy GPU-time / (total GPUs x makespan)

  std::vector<double> jcts() const;            ///< completion - arrival
  std::vector<double> queueing_delays() const; ///< first start - arrival
};

/// Runs the trace to completion. `link` prices gradient synchronization in
/// each job's throughput. Training jobs only — serving jobs are live
/// replay loops, which the ClusterController (sched/cluster.h) drives.
SimResult simulate(const ClusterInventory& cluster, std::vector<JobSpec> trace,
                   Scheduler& policy, const LinkSpec& link = {});

/// Validates a policy's output against the inventory: no negative counts,
/// no per-type over-commit. Throws VfError naming the offending device
/// type on violation. Shared by simulate() and the ClusterController's
/// grant path, so a buggy policy fails loudly at the decision point
/// instead of corrupting downstream accounting.
void validate_allocations(const ClusterInventory& cluster,
                          const std::map<std::int64_t, Allocation>& allocs);

/// The serving carve-out shared by the mixed-job policies: every serving
/// job in `jobs` (non-serve entries are ignored) is granted
/// clamp(desired_gpus, live_min, live_max) GPUs of `pool_type` from
/// `pool`, minimums first (throws if the minimums alone do not fit —
/// that is a cluster-sizing error, not a scheduling decision), then the
/// remainder one device at a time in (priority desc, id asc) round-robin
/// order until desires are met or the pool runs dry. On return `pool`
/// has the granted devices subtracted, ready for the training pass.
std::map<std::int64_t, Allocation> carve_serving_grants(
    ClusterInventory& pool, const std::vector<const JobState*>& jobs,
    DeviceType pool_type);

}  // namespace vf
