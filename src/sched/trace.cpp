#include "sched/trace.h"

#include <cmath>

#include "util/common.h"
#include "util/rng.h"
#include "workloads/profiles.h"

namespace vf {

const std::vector<WorkloadMixEntry>& table3_mix() {
  static const std::vector<WorkloadMixEntry> mix = {
      // Table 3 of the paper. Demands follow the paper's per-workload
      // virtual-node/GPU ranges; base_steps give hour-scale jobs once the
      // cost model prices each step.
      {"resnet56", "cifar10-sim", {64, 128}, 2, 3000},
      {"resnet50", "imagenet-sim", {256, 512, 1024, 2048, 4096, 8192}, 8, 1200},
      {"bert-base", "cola-sim", {8, 16, 32, 64, 128}, 4, 2000},
      {"bert-base", "sst2-sim", {8, 16, 32, 64, 128}, 4, 2000},
      {"transformer", "", {4096, 8192, 16384, 32768, 65536}, 8, 1500},
  };
  return mix;
}

std::vector<JobSpec> poisson_trace(const TraceOptions& options) {
  check(options.num_jobs > 0, "trace must contain jobs");
  check(options.jobs_per_hour > 0.0, "arrival rate must be positive");
  CounterRng rng(options.seed, /*stream=*/0x7A4CE);
  std::vector<WorkloadMixEntry> mix;
  for (const auto& e : table3_mix()) {
    if (options.workloads.empty()) {
      mix.push_back(e);
    } else {
      for (const auto& w : options.workloads)
        if (e.workload == w) mix.push_back(e);
    }
  }
  check(!mix.empty(), "workload filter excluded the whole Table 3 mix");

  std::vector<JobSpec> trace;
  double t = 0.0;
  const double mean_gap = 3600.0 / options.jobs_per_hour;
  for (std::int64_t i = 0; i < options.num_jobs; ++i) {
    // Exponential interarrival.
    const double u = std::max(1e-12, rng.next_double());
    t += -std::log(u) * mean_gap;

    const auto& entry = mix[rng.next_below(mix.size())];
    JobSpec j;
    j.id = i;
    j.arrival_s = t;
    const double pr[] = {1.0, 5.0, 10.0};
    j.priority = pr[rng.next_below(3)];
    j.workload = entry.workload;
    j.task = entry.task;
    j.profile = model_profile(entry.workload);
    j.global_batch =
        entry.batch_sizes[rng.next_below(entry.batch_sizes.size())];
    j.demand_gpus = entry.demand_gpus;
    // Job length jitter: 0.5x .. 1.5x of the nominal step count.
    const double jitter = 0.5 + rng.next_double();
    j.total_steps = std::max<std::int64_t>(
        10, static_cast<std::int64_t>(static_cast<double>(entry.base_steps) * jitter *
                                      options.steps_scale));
    trace.push_back(j);
  }
  return trace;
}

}  // namespace vf
