// The device-lease protocol between the ClusterController and the
// tenants it governs (sched/cluster.h).
//
// A lease holder is anything that consumes cluster devices on the shared
// virtual clock: a `vf::serve::Server`, a `ColocatedServer` (both
// implement this interface directly), or a training engine wrapped in an
// `EngineTrainLease`. The controller drives every holder through the same
// five verbs:
//
//   next_event_s()  — when does the holder next need the clock?
//   pump(horizon)   — process everything due at or before `horizon`
//   load()          — raw load signal for the policy layer
//   apply_grant(n)  — resize the leased device-set to n devices
//   drained()       — all work done; the lease can be retired
//
// The decision of HOW MANY devices a holder runs on lives entirely above
// this interface: the controller derives a desired size from the load
// signal (elastic_resize_target is one input; SLO deadline pressure is
// another) and the pluggable Scheduler policy arbitrates desires against
// the shared ClusterInventory. A holder never resizes itself while
// cluster-governed — it reports load and consumes grants, nothing more.
//
// Determinism contract: every method is a pure function of the holder's
// replay state on the virtual clock. Holders are pumped in job-id order
// and grants are applied in policy-output order, so a whole cluster run
// is bit-identical across host worker counts.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace vf::sched {

/// Raw load signal a lease holder reports at each controller event. The
/// holder reports facts; the controller turns them into a desired device
/// count. Watermarks ride along because they are the holder's calibrated
/// hysteresis band (from its ElasticPolicy) — advisory inputs, not a
/// decision.
struct LoadSignal {
  std::int64_t queue_depth = 0;   ///< backlog not yet admitted into slots
  std::int64_t inflight = 0;      ///< admitted + parked (between-slot) requests
  std::int64_t devices = 0;       ///< current leased device count
  std::int64_t min_devices = 1;   ///< live floor (latency-critical minimum)
  std::int64_t max_devices = 1;   ///< live ceiling (VN count, capped by kills)
  std::int64_t high_watermark = 0;  ///< hysteresis grow threshold
  std::int64_t low_watermark = 0;   ///< hysteresis shrink threshold
  double oldest_wait_s = 0.0;     ///< queue wait of the oldest backlogged request
  double deadline_s = 0.0;        ///< that request's SLO budget (0 = none)
  bool drained = false;           ///< no pending or in-flight work remains
};

/// The one interface through which serving device-sets and training
/// engines consume cluster grants. See the file comment for the protocol.
class DeviceLease {
 public:
  virtual ~DeviceLease() = default;

  /// Virtual stamp of the holder's next internal event (slice completion,
  /// arrival, fault, timeout). +inf when the holder needs nothing until
  /// the next grant or is drained.
  virtual double next_event_s() const = 0;

  /// Processes every internal event due at or before `horizon_s` and
  /// advances the holder's clock to `horizon_s` (so a grant applied right
  /// after is stamped at controller time). `horizon_s` may be +inf to run
  /// to completion (self-driving replay).
  virtual void pump(double horizon_s) = 0;

  /// Raw load signal at the holder's current clock.
  virtual LoadSignal load() const = 0;

  /// Resizes the leased device-set to `devices` through the holder's own
  /// seamless/rolling-migration machinery. Returns the migration seconds
  /// charged to the holder's clock. A no-op (and 0.0) when `devices`
  /// equals the current count. Serving holders require `devices` >= 1
  /// (they cannot run on nothing); EngineTrainLease additionally accepts
  /// 0 as full preemption.
  virtual double apply_grant(std::int64_t devices) = 0;

  /// True once all work has drained; the controller retires the lease and
  /// returns its devices to the pool.
  virtual bool drained() const = 0;
};

}  // namespace vf::sched
