// Gavel-style round-based Least-Attained-Service scheduler, with the
// paper's heterogeneous-allocation extension (§6.5.2).
//
// Gavel [36] schedules heterogeneous clusters in fixed rounds (6 minutes
// in the paper), ordering jobs by least attained (weighted) service, but
// only ever gives a job GPUs of a single type per round. The paper's
// extension lets a job additionally use leftover GPUs of *other* types —
// possible only because VirtualFlow's heterogeneous training keeps the
// global batch and convergence semantics intact under uneven splits.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sched/simulator.h"

namespace vf {

/// Configuration for the Gavel simulation.
struct GavelOptions {
  bool heterogeneous_allocations = false;  ///< the paper's +HT extension
  double round_s = 360.0;                  ///< paper: 6-minute rounds
  double restart_penalty_s = 30.0;         ///< checkpoint-restart on change
  /// Minimum relative throughput gain for adding another device type to a
  /// job's allocation (keeps the extension from mixing types for noise).
  double min_hetero_gain = 0.05;
  /// Device type serving jobs draw from in mixed job sets (serving
  /// engines run homogeneous pools; see carve_serving_grants).
  DeviceType serve_pool = DeviceType::kV100;
};

class GavelScheduler : public Scheduler {
 public:
  explicit GavelScheduler(GavelOptions options);

  std::map<std::int64_t, Allocation> schedule(
      const ClusterInventory& cluster, const std::vector<const JobState*>& jobs,
      double now) override;

  double round_interval_s() const override { return options_.round_s; }
  double resize_penalty_s() const override { return options_.restart_penalty_s; }
  std::string name() const override {
    return options_.heterogeneous_allocations ? "gavel+ht" : "gavel";
  }

 private:
  std::map<std::int64_t, Allocation> compute_round(
      const ClusterInventory& cluster, const std::vector<const JobState*>& jobs) const;

  GavelOptions options_;
  double next_recompute_s_ = 0.0;
  std::map<std::int64_t, Allocation> cached_;
  /// Serving job ids seen at the last consult: a serving arrival or
  /// departure mid-round forces a full recompute (its minimum must be
  /// honored immediately, which only a fresh carve can guarantee).
  std::vector<std::int64_t> last_serve_ids_;
};

}  // namespace vf
