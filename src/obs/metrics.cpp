#include "obs/metrics.h"

#include "obs/json.h"
#include "util/common.h"

namespace vf::obs {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  check(!edges_.empty(), "a histogram needs at least one bucket edge");
  for (std::size_t i = 1; i < edges_.size(); ++i)
    check(edges_[i - 1] < edges_[i], "histogram edges must be strictly ascending");
  buckets_.assign(edges_.size() + 1, 0);
}

void Histogram::observe(double v) {
  std::size_t b = 0;
  while (b < edges_.size() && v > edges_[b]) ++b;
  ++buckets_[b];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
}

Counter& MetricsRegistry::counter(const std::string& name) { return counters_[name]; }

Gauge& MetricsRegistry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& edges) {
  const auto it = histograms_.find(name);
  if (it == histograms_.end())
    return histograms_.emplace(name, Histogram(edges)).first->second;
  check(it->second.edges() == edges,
        "histogram '" + name + "' re-registered with different bucket edges");
  return it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::to_json() const {
  std::string out;
  out += "{\n  \"metrics\": {\n    \"counters\": [";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "      {\"name\": \"" + json_escape(name) +
           "\", \"value\": " + std::to_string(c.value) + "}";
  }
  out += first ? "],\n" : "\n    ],\n";

  out += "    \"gauges\": [";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "      {\"name\": \"" + json_escape(name) + "\", \"value\": ";
    append_double(out, g.value);
    out += ", \"stamp_s\": ";
    append_double(out, g.stamp_s);
    out += "}";
  }
  out += first ? "],\n" : "\n    ],\n";

  out += "    \"histograms\": [";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "      {\"name\": \"" + json_escape(name) +
           "\", \"count\": " + std::to_string(h.count()) + ", \"sum\": ";
    append_double(out, h.sum());
    out += ", \"min\": ";
    append_double(out, h.min());
    out += ", \"max\": ";
    append_double(out, h.max());
    out += ", \"edges\": [";
    for (std::size_t i = 0; i < h.edges().size(); ++i) {
      if (i != 0) out += ", ";
      append_double(out, h.edges()[i]);
    }
    out += "], \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(h.buckets()[i]);
    }
    out += "]}";
  }
  out += first ? "]\n" : "\n    ]\n";
  out += "  }\n}\n";
  return out;
}

bool MetricsRegistry::save(const std::string& path) const {
  return save_text_file(path, to_json());
}

}  // namespace vf::obs
