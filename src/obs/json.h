// vf::obs JSON plumbing: locale-independent, round-trip-exact scalar
// formatting plus the flat name/value/unit report the benches emit.
//
// Everything the observability layer exports (metrics snapshots, trace
// events, BENCH_*.json perf records) is serialized through the helpers in
// this header, so the determinism contract extends to the BYTES on disk:
// two replays that agree bit-for-bit on their virtual-clock stamps produce
// byte-identical JSON, on any host, under any global locale.
//
// `format_double` is the core: std::to_chars emits the shortest decimal
// string that parses back to the same bits (round-trip exact, always '.'
// as the decimal point). The previous writer — printf %.17g — was both
// locale-sensitive (a German locale turns 1.5 into "1,5", which is not
// JSON) and noisy (0.1 printed as 0.10000000000000001); this replaces it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vf::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& s);

/// Appends the shortest round-trip decimal form of `v` to `out`:
/// parsing the result (std::from_chars / strtod in the C locale) yields
/// exactly the same bits. Locale-independent — the decimal point is '.'
/// under any global locale. Non-finite values have no JSON spelling and
/// serialize as `null`.
void append_double(std::string& out, double v);

/// `append_double` into a fresh string.
std::string format_double(double v);

/// Writes `text` to `path`. Returns false after a stderr diagnosis on an
/// IO failure so callers can turn it into a nonzero exit.
bool save_text_file(const std::string& path, const std::string& text);

/// Machine-readable benchmark/metrics output: a flat list of
/// name/value/unit records serialized as JSON. This is the repo's perf
/// trajectory format (`BENCH_*.json`): every record is one measured
/// scalar, names are dotted paths ("e2e.speedup",
/// "kernel.matmul.1024x32x64.blocked"), and the CI perf-smoke job uploads
/// the files as artifacts so regressions are diffable across commits.
///
/// Shape:
///   { "bench": "<name>", "results": [
///       {"name": "...", "value": 1.23, "unit": "GFLOP/s"}, ... ] }
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  void add(const std::string& name, double value, const std::string& unit);

  /// The full report as a JSON string (round-trip-exact values).
  std::string to_json() const;

  /// Serializes to `path`. Returns false (after a stderr diagnosis) on an
  /// IO failure so benches can turn it into a nonzero exit.
  bool save(const std::string& path) const;

  std::size_t size() const { return recs_.size(); }

 private:
  struct Rec {
    std::string name;
    double value;
    std::string unit;
  };
  std::string bench_;
  std::vector<Rec> recs_;
};

}  // namespace vf::obs
