#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "util/common.h"

namespace vf::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no spelling for nan/inf; null keeps the document parseable
    // and makes the bad sample impossible to mistake for a number.
    out += "null";
    return;
  }
  // Shortest form that round-trips: to_chars without a precision argument.
  // Always enough for the shortest representation of any double.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  check(res.ec == std::errc(), "to_chars failed formatting a double");
  out.append(buf, res.ptr);
}

std::string format_double(double v) {
  std::string out;
  append_double(out, v);
  return out;
}

bool save_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "error: cannot open for writing: " << path << "\n";
    return false;
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = written == text.size() && std::fclose(f) == 0;
  if (!ok) std::cerr << "error: failed writing: " << path << "\n";
  return ok;
}

void JsonReport::add(const std::string& name, double value, const std::string& unit) {
  recs_.push_back(Rec{name, value, unit});
}

std::string JsonReport::to_json() const {
  std::string out;
  out += "{\n  \"bench\": \"";
  out += json_escape(bench_);
  out += "\",\n  \"results\": [";
  for (std::size_t i = 0; i < recs_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    out += json_escape(recs_[i].name);
    out += "\", \"value\": ";
    append_double(out, recs_[i].value);
    out += ", \"unit\": \"";
    out += json_escape(recs_[i].unit);
    out += "\"}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool JsonReport::save(const std::string& path) const { return save_text_file(path, to_json()); }

}  // namespace vf::obs
