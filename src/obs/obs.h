// The observability handle threaded through the runtime: nullable
// pointers to a TraceRecorder and a MetricsRegistry. Both null (the
// default) means recording is OFF, and every instrumentation site reduces
// to one pointer test — the null-sink fast path that keeps the serving
// and training hot loops allocation-free and within noise when nobody is
// watching. The referents are owned by the caller (a bench, an example, a
// test) and must outlive whatever the handle is attached to.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vf::obs {

struct Observability {
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
  bool on() const { return trace != nullptr || metrics != nullptr; }
};

}  // namespace vf::obs
