// MetricsRegistry: named counters, gauges, and fixed-bucket histograms for
// the runtime — the BENCH_*.json JsonReport plumbing generalized into a
// metrics sink the serving/training loops feed while they run.
//
// Design rules, all serving the repo's determinism contract:
//
//   * Instruments live in node-stable maps, so `counter("x")` returns a
//     reference that stays valid for the registry's lifetime — hot loops
//     resolve a name ONCE (at attach time) and then bump a cached pointer,
//     allocation-free.
//   * Gauges are stamped with the caller's VIRTUAL clock, never wall time:
//     a snapshot is a pure function of the replay, so two replays that
//     agree on their schedules serialize byte-identical snapshots.
//   * Histograms have fixed bucket edges declared at registration
//     (re-registration with different edges is an error) — bucket counts
//     are integers, immune to accumulation-order noise.
//   * Snapshots serialize sorted by name (std::map order), through the
//     locale-independent round-trip writer in obs/json.h.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vf::obs {

/// Monotonic event count.
struct Counter {
  std::int64_t value = 0;
  void add(std::int64_t delta = 1) { value += delta; }
};

/// Last-write-wins sample, stamped with the virtual clock of the write.
struct Gauge {
  double value = 0.0;
  double stamp_s = 0.0;
  void set(double v, double now_s) {
    value = v;
    stamp_s = now_s;
  }
};

/// Fixed-edge histogram: `edges` (ascending) split the line into
/// edges.size() + 1 buckets; bucket i counts samples v <= edges[i], the
/// last bucket is the overflow. Tracks count/sum/min/max alongside.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void observe(double v);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }  ///< 0.0 before the first sample
  double max() const { return max_; }
  const std::vector<double>& edges() const { return edges_; }
  /// edges.size() + 1 bucket counts (last = overflow past the top edge).
  const std::vector<std::int64_t>& buckets() const { return buckets_; }

 private:
  std::vector<double> edges_;
  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Get-or-create. The returned reference is stable for the registry's
  /// lifetime (node-based map) — cache it outside hot loops.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Get-or-create with fixed `edges` (ascending, non-empty). A second
  /// registration of `name` must pass identical edges.
  Histogram& histogram(const std::string& name, const std::vector<double>& edges);

  /// Lookup without creating; nullptr when absent (tests, read-outs).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Snapshot of every instrument, sorted by name, values formatted
  /// round-trip-exact:
  ///   { "metrics": { "counters": [{"name","value"}...],
  ///                  "gauges": [{"name","value","stamp_s"}...],
  ///                  "histograms": [{"name","count","sum","min","max",
  ///                                  "edges","buckets"}...] } }
  std::string to_json() const;
  bool save(const std::string& path) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace vf::obs
