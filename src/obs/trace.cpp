#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"
#include "util/common.h"

namespace vf::obs {

namespace {

/// Export track id of an event: devices map to their own tid, the control
/// track (device -1: resizes, rejections, batch barriers) to a fixed high
/// tid so it sorts below the device lanes in Perfetto.
constexpr std::int32_t kControlTid = 999;

std::int32_t tid_of(const TraceEvent& e) {
  return e.device < 0 ? kControlTid : e.device;
}

void append_us(std::string& out, double seconds) {
  // Virtual seconds -> trace microseconds. The multiply is one IEEE op on
  // bit-identical inputs, so the printed form is byte-deterministic.
  append_double(out, seconds * 1e6);
}

}  // namespace

std::int64_t TraceRecorder::span(const char* name, double start_s, double end_s,
                                 std::int32_t device, std::int32_t vn,
                                 std::int32_t model, std::int64_t batch,
                                 bool warm) {
  check(end_s >= start_s, "a trace span must not end before it starts");
  TraceEvent e;
  e.name = name;
  e.instant = false;
  e.ts_s = start_s;
  e.dur_s = end_s - start_s;
  e.device = device;
  e.vn = vn;
  e.model = model;
  e.batch = batch;
  e.warm = warm;
  events_.push_back(e);
  return static_cast<std::int64_t>(events_.size()) - 1;
}

void TraceRecorder::instant(const char* name, double ts_s, std::int32_t device,
                            std::int32_t vn, std::int32_t model,
                            std::int64_t arg0, std::int64_t arg1, double arg_s) {
  TraceEvent e;
  e.name = name;
  e.instant = true;
  e.ts_s = ts_s;
  e.device = device;
  e.vn = vn;
  e.model = model;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.arg_s = arg_s;
  events_.push_back(e);
}

void TraceRecorder::set_queue_depth(std::int64_t idx, std::int64_t depth) {
  if (idx == kNoSpan) return;
  check_index(idx, static_cast<std::int64_t>(events_.size()), "trace span");
  events_[static_cast<std::size_t>(idx)].queue_depth = depth;
}

void TraceRecorder::set_model(std::int64_t idx, std::int32_t model) {
  if (idx == kNoSpan) return;
  check_index(idx, static_cast<std::int64_t>(events_.size()), "trace span");
  events_[static_cast<std::size_t>(idx)].model = model;
}

std::string TraceRecorder::to_json() const {
  // Thread-name metadata first, one per distinct track, ascending tid —
  // derived from the events, so the header is as deterministic as they are.
  std::vector<std::int32_t> tids;
  tids.reserve(8);
  for (const TraceEvent& e : events_) {
    const std::int32_t t = tid_of(e);
    if (std::find(tids.begin(), tids.end(), t) == tids.end()) tids.push_back(t);
  }
  std::sort(tids.begin(), tids.end());

  std::string out;
  out.reserve(events_.size() * 128 + 256);
  out += "{\"traceEvents\": [\n";
  out += "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
         "\"args\": {\"name\": \"virtualflow\"}}";
  for (const std::int32_t t : tids) {
    out += ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": " +
           std::to_string(t) + ", \"args\": {\"name\": \"" +
           (t == kControlTid ? std::string("control") : "device " + std::to_string(t)) +
           "\"}}";
  }

  for (const TraceEvent& e : events_) {
    out += ",\n  {\"name\": \"";
    out += json_escape(e.name);
    out += e.instant ? "\", \"ph\": \"i\", \"s\": \"g\"" : "\", \"ph\": \"X\"";
    out += ", \"pid\": 0, \"tid\": " + std::to_string(tid_of(e));
    out += ", \"ts\": ";
    append_us(out, e.ts_s);
    if (!e.instant) {
      out += ", \"dur\": ";
      append_us(out, e.dur_s);
    }
    out += ", \"args\": {\"vn\": " + std::to_string(e.vn) +
           ", \"model\": " + std::to_string(e.model);
    if (e.instant) {
      out += ", \"arg0\": " + std::to_string(e.arg0) +
             ", \"arg1\": " + std::to_string(e.arg1) + ", \"arg_s\": ";
      append_double(out, e.arg_s);
    } else {
      out += ", \"batch\": " + std::to_string(e.batch) +
             ", \"warm\": " + std::string(e.warm ? "true" : "false") +
             ", \"queue_depth\": " + std::to_string(e.queue_depth);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

bool TraceRecorder::save(const std::string& path) const {
  return save_text_file(path, to_json());
}

}  // namespace vf::obs
