// TraceRecorder: per-slice span events and instant markers on the virtual
// clock, exported as Chrome trace-event JSON — one track per device, so a
// serving replay opens directly in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing as a device-occupancy timeline.
//
// Every stamp is VIRTUAL time (the serving/training clock), never wall
// time, and events are appended in the replay's deterministic event order
// — so the exported trace is a pure function of (trace, policies, cost
// model) and byte-identical across host worker counts; bench_streaming
// and tests/serve gate exactly that, which makes the trace itself a
// witness of the determinism contract.
//
// Event names are static strings and TraceEvent is a flat POD, so
// recording one event is a bounded vector push — no per-event string or
// map allocations, and nothing at all when no recorder is attached (the
// null-sink fast path is a pointer test at every instrumentation site).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vf::obs {

/// One recorded event. Spans cover [ts_s, ts_s + dur_s]; instants mark a
/// point. `device` selects the export track (tid); -1 is the control
/// track, where scheduler-level events (resizes, rejections, batch
/// barriers) land.
struct TraceEvent {
  const char* name = "";  ///< static string (slice kind or marker name)
  bool instant = false;
  double ts_s = 0.0;
  double dur_s = 0.0;
  std::int32_t device = -1;
  std::int32_t vn = -1;
  std::int32_t model = -1;
  std::int64_t batch = 0;        ///< requests in the slice/batch
  std::int64_t queue_depth = -1;  ///< finalized late via set_queue_depth
  bool warm = false;             ///< warm/cold dispatch pricing of the slice
  /// Marker payload, interpretation by name: resize -> (from, to) device
  /// counts and `arg_s` = migration seconds; cutover -> arg0 = model;
  /// reject -> arg0 = request id; preempt -> none.
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
  double arg_s = 0.0;
};

class TraceRecorder {
 public:
  /// Sentinel span index: "no span" (set_* calls on it are no-ops, so
  /// call sites can finalize unconditionally).
  static constexpr std::int64_t kNoSpan = -1;

  /// Records a complete span and returns its index for late finalization.
  std::int64_t span(const char* name, double start_s, double end_s,
                    std::int32_t device, std::int32_t vn, std::int32_t model,
                    std::int64_t batch, bool warm);

  /// Records an instant marker.
  void instant(const char* name, double ts_s, std::int32_t device,
               std::int32_t vn, std::int32_t model, std::int64_t arg0 = 0,
               std::int64_t arg1 = 0, double arg_s = 0.0);

  /// Late finalizations for span `idx` (no-ops when idx == kNoSpan): the
  /// servers learn the post-admission queue depth and the owning model
  /// after the dispatcher has already stamped the span.
  void set_queue_depth(std::int64_t idx, std::int64_t depth);
  void set_model(std::int64_t idx, std::int32_t model);

  std::size_t size() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Chrome trace-event JSON: {"traceEvents": [...]} with "M" thread-name
  /// metadata per distinct device track, then every event in recording
  /// order ("X" complete spans / "i" instants, ts and dur in microseconds
  /// of virtual time). Byte-deterministic given bit-identical stamps.
  std::string to_json() const;
  bool save(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace vf::obs
