#include "solver/solver.h"

#include <algorithm>

#include "util/common.h"

namespace vf {

HeterogeneousSolver::HeterogeneousSolver(ModelProfile model,
                                         std::map<DeviceType, OfflineProfile> profiles,
                                         LinkSpec link)
    : model_(std::move(model)), profiles_(std::move(profiles)), link_(link) {
  check(!profiles_.empty(), "solver needs at least one device profile");
  for (const auto& [type, prof] : profiles_)
    check(prof.workload() == model_.name,
          "profile for " + device_spec(type).name + " is for workload '" +
              prof.workload() + "', not '" + model_.name + "'");
}

const OfflineProfile& HeterogeneousSolver::profile(DeviceType type) const {
  const auto it = profiles_.find(type);
  check(it != profiles_.end(),
        std::string("no profile for device type ") + device_type_name(type));
  return it->second;
}

std::int64_t HeterogeneousSolver::choose_vns(DeviceType type,
                                             std::int64_t per_gpu_batch) const {
  check(per_gpu_batch > 0, "per-GPU batch must be positive");
  const std::int64_t frontier = profile(type).max_batch();
  for (std::int64_t v = 1; v <= per_gpu_batch; ++v) {
    if (per_gpu_batch % v != 0) continue;
    if (per_gpu_batch / v <= frontier) return v;
  }
  return 0;
}

double HeterogeneousSolver::predict_step_time(
    const std::vector<TypeAssignment>& assignment) const {
  check(!assignment.empty(), "empty assignment");
  double worst = 0.0;
  std::int64_t world = 0;
  for (const TypeAssignment& a : assignment) {
    check(a.vns_per_gpu > 0 && a.per_vn_batch > 0 && a.gpus > 0,
          "invalid type assignment");
    const double t = static_cast<double>(a.vns_per_gpu) *
                     profile(a.type).step_time(a.per_vn_batch);
    worst = std::max(worst, t);
    world += a.gpus;
  }
  const double comm = world > 1 ? ring_allreduce_time_s(model_.param_bytes(), world, link_)
                                : 0.0;
  return worst + comm;
}

void HeterogeneousSolver::enumerate(const std::vector<GpuGroup>& inventory,
                                    std::size_t idx, std::int64_t remaining,
                                    std::vector<TypeAssignment>& partial,
                                    std::vector<SolverResult>& out) const {
  if (idx == inventory.size()) {
    if (remaining != 0 || partial.empty()) return;
    SolverResult r;
    r.assignment = partial;
    r.predicted_step_time_s = predict_step_time(partial);
    std::int64_t b = 0;
    for (const auto& a : partial) b += a.gpus * a.per_gpu_batch;
    r.predicted_throughput = static_cast<double>(b) / r.predicted_step_time_s;
    r.heterogeneous = partial.size() > 1;
    out.push_back(std::move(r));
    return;
  }

  const GpuGroup& g = inventory[idx];
  check(g.count > 0, "GPU group count must be positive");

  // Option 1: skip this type entirely (b_i = 0).
  enumerate(inventory, idx + 1, remaining, partial, out);

  // Option 2: per-GPU batch from the power-of-2-like grid, using every
  // GPU of the group. Per-GPU batches may exceed the memory frontier —
  // that is what multiple virtual nodes are for.
  if (profiles_.count(g.type) == 0) return;  // unprofiled type: cannot use
  for (const std::int64_t b : pow2_like_batches(remaining)) {
    const std::int64_t used = b * g.count;
    if (used > remaining) break;
    const std::int64_t v = choose_vns(g.type, b);
    if (v == 0) continue;
    TypeAssignment a;
    a.type = g.type;
    a.gpus = g.count;
    a.per_gpu_batch = b;
    a.vns_per_gpu = v;
    a.per_vn_batch = b / v;
    partial.push_back(a);
    enumerate(inventory, idx + 1, remaining - used, partial, out);
    partial.pop_back();
  }
}

std::vector<SolverResult> HeterogeneousSolver::solve_all(
    const std::vector<GpuGroup>& inventory, std::int64_t global_batch) const {
  check(!inventory.empty(), "empty inventory");
  check(global_batch > 0, "global batch must be positive");
  std::vector<SolverResult> out;
  std::vector<TypeAssignment> partial;
  enumerate(inventory, 0, global_batch, partial, out);
  std::sort(out.begin(), out.end(), [](const SolverResult& x, const SolverResult& y) {
    if (x.predicted_step_time_s != y.predicted_step_time_s)
      return x.predicted_step_time_s < y.predicted_step_time_s;
    // Tie-break toward simpler (fewer types, fewer GPUs) configurations.
    if (x.assignment.size() != y.assignment.size())
      return x.assignment.size() < y.assignment.size();
    std::int64_t gx = 0, gy = 0;
    for (const auto& a : x.assignment) gx += a.gpus;
    for (const auto& a : y.assignment) gy += a.gpus;
    return gx < gy;
  });
  return out;
}

std::optional<SolverResult> HeterogeneousSolver::solve(
    const std::vector<GpuGroup>& inventory, std::int64_t global_batch) const {
  auto all = solve_all(inventory, global_batch);
  if (all.empty()) return std::nullopt;

  // Fallback rule (§5.1.2): prefer the best homogeneous configuration
  // unless a heterogeneous one improves the step time by more than the
  // profiling noise floor — mixing types for a within-noise "win" would
  // add coordination complexity for nothing (the paper's H1 behaviour).
  constexpr double kNoiseMargin = 0.02;
  const SolverResult& best = all.front();
  if (!best.heterogeneous) return best;
  for (const SolverResult& r : all) {
    if (!r.heterogeneous &&
        r.predicted_step_time_s <= best.predicted_step_time_s * (1.0 + kNoiseMargin)) {
      return r;
    }
  }
  return best;
}

}  // namespace vf
