// Heterogeneous solver (§5.1.2).
//
// Given offline profiles t_i(b) for every device type, a heterogeneous
// inventory {n_i}, and a global batch B, find per-type per-GPU batches b_i
// and virtual-node counts v_i minimizing the paper's objective
//
//     min  max_i ( v_i * t_i(b_i / v_i) + comm )
//     s.t. sum_i n_i * b_i = B
//
// (the paper writes t_i(b_i) * v_i; with t_i defined on the *per-VN*
// micro-batch this is v_i * t_i(b_i / v_i), which is the computable form —
// each of the v_i sequential virtual nodes runs a micro-batch of b_i/v_i).
// Batch sizes are restricted to the power-of-2-like grid of §5.1.1. When
// no heterogeneous combination beats the best homogeneous configuration
// the solver falls back to homogeneous, exactly as the paper describes for
// experiment group H1.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "comm/comm.h"
#include "device/model_profile.h"
#include "profiler/profiler.h"

namespace vf {

/// A pool of identical GPUs available to the job.
struct GpuGroup {
  DeviceType type = DeviceType::kV100;
  std::int64_t count = 0;
};

/// The solver's decision for one device type.
struct TypeAssignment {
  DeviceType type = DeviceType::kV100;
  std::int64_t gpus = 0;          ///< n_i (all GPUs of the group, or skipped)
  std::int64_t per_gpu_batch = 0; ///< b_i
  std::int64_t vns_per_gpu = 0;   ///< v_i
  std::int64_t per_vn_batch = 0;  ///< b_i / v_i
};

/// A complete configuration with its predicted performance.
struct SolverResult {
  std::vector<TypeAssignment> assignment;  ///< used types only
  double predicted_step_time_s = 0.0;
  double predicted_throughput = 0.0;       ///< examples/s
  bool heterogeneous = false;              ///< more than one type used
};

/// Solver over a fixed workload (model + per-type offline profiles).
class HeterogeneousSolver {
 public:
  HeterogeneousSolver(ModelProfile model,
                      std::map<DeviceType, OfflineProfile> profiles,
                      LinkSpec link = {});

  /// Best configuration for the inventory, or nullopt if no feasible
  /// split of B exists on the power-of-2-like grid.
  std::optional<SolverResult> solve(const std::vector<GpuGroup>& inventory,
                                    std::int64_t global_batch) const;

  /// All feasible configurations, best first (used by the evaluation
  /// benches to show the even-vs-uneven gap of Fig 7).
  std::vector<SolverResult> solve_all(const std::vector<GpuGroup>& inventory,
                                      std::int64_t global_batch) const;

  /// Predicted step time of an explicit configuration (Fig 14's
  /// "Solver" series; also lets benches price the paper's Table 4 rows).
  double predict_step_time(const std::vector<TypeAssignment>& assignment) const;

  /// Picks the cheapest feasible VN count for a per-GPU batch on a type:
  /// the smallest v dividing `per_gpu_batch` whose micro-batch fits the
  /// device's profiled memory frontier. Returns 0 if none fits.
  std::int64_t choose_vns(DeviceType type, std::int64_t per_gpu_batch) const;

  const OfflineProfile& profile(DeviceType type) const;

 private:
  void enumerate(const std::vector<GpuGroup>& inventory, std::size_t idx,
                 std::int64_t remaining, std::vector<TypeAssignment>& partial,
                 std::vector<SolverResult>& out) const;

  ModelProfile model_;
  std::map<DeviceType, OfflineProfile> profiles_;
  LinkSpec link_;
};

}  // namespace vf
