// Summary statistics used by the scheduler experiments (JCT distributions,
// queueing-delay CDFs) and the microbenchmarks.
#pragma once

#include <cstddef>
#include <vector>

namespace vf {

double mean(const std::vector<double>& xs);
double sum(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);

/// p in [0, 1]; linear interpolation between order statistics.
double percentile(std::vector<double> xs, double p);

/// Multi-percentile read-out: element i equals percentile(xs, ps[i])
/// bit-for-bit, but the samples are sorted ONCE instead of once per p.
/// SloTracker::summary() reads five percentiles of the same replay — per
/// model, per resize tick in the co-located path — and was re-sorting a
/// by-value copy for each.
std::vector<double> percentiles(std::vector<double> xs,
                                const std::vector<double>& ps);
double median(std::vector<double> xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;  // P(X <= value)
};

/// Full empirical CDF (sorted); suitable for plotting Fig 12-style curves.
std::vector<CdfPoint> empirical_cdf(std::vector<double> xs);

/// Relative change (b - a) / a, in percent. Used for "reduced X by N%" rows.
double pct_change(double a, double b);

}  // namespace vf
