#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/common.h"

namespace vf {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  check(!headers_.empty(), "table requires at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  check(!rows_.empty(), "call row() before cell()");
  check(rows_.back().size() < headers_.size(), "row has more cells than headers");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }
Table& Table::cell(double value, int precision) { return cell(fmt_double(value, precision)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }
Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << "  " << std::left << std::setw(static_cast<int>(widths[c])) << v;
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return fmt_double(bytes, 2) + " " + units[u];
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << "=== " << title << " ===" << '\n';
}

}  // namespace vf
