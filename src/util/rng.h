// Deterministic, counter-based random number generation.
//
// VirtualFlow's central reproducibility claim is that the virtual-node ->
// device mapping has no effect on training semantics. Every source of
// randomness therefore has to be keyed by *logical* identifiers (seed,
// stream, epoch, virtual-node id, step) and never by execution order or
// device identity. A counter-based generator gives us random access into
// the stream: draw k of stream (s, c) is a pure function of (seed, s, c, k).
#pragma once

#include <cstdint>
#include <vector>

namespace vf {

/// SplitMix64 finalizer; used as the mixing function of the counter RNG.
std::uint64_t splitmix64(std::uint64_t x);

/// Counter-based deterministic RNG.
///
/// Each (seed, stream) pair identifies an independent random stream, and
/// each draw advances a local counter. Two CounterRng instances constructed
/// with the same key produce identical sequences regardless of what any
/// other instance did — there is no hidden global state.
class CounterRng {
 public:
  /// `seed` is the experiment seed; `stream` distinguishes independent
  /// uses (e.g. weight init vs. data shuffling vs. dropout for VN 7).
  explicit CounterRng(std::uint64_t seed, std::uint64_t stream = 0);

  /// Uniform bits.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Standard normal via Box-Muller (both values of the pair are used,
  /// so the stream stays deterministic and cheap).
  float normal();

  /// Normal with the given mean and standard deviation.
  float normal(float mean, float stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Deterministic Fisher-Yates permutation of {0, ..., n-1}.
  std::vector<std::int64_t> permutation(std::int64_t n);

  /// Number of draws made so far (useful for tests).
  std::uint64_t counter() const { return counter_; }

 private:
  std::uint64_t key_;
  std::uint64_t counter_ = 0;
  bool have_cached_normal_ = false;
  float cached_normal_ = 0.0F;
};

/// Derives a child seed from (seed, tag). Used to fan a single experiment
/// seed out into per-purpose streams without correlation.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t tag);

}  // namespace vf
