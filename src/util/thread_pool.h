// Fixed-size worker pool used to run per-device engine work concurrently.
//
// Determinism contract: parallel_for(n, fn) runs fn(0..n-1) exactly once
// each, with completion of all invocations guaranteed on return. Which
// worker runs which index (and in what order) is unspecified — callers
// must write results into per-index slots and reduce them in a fixed
// order afterwards. The engine follows exactly that pattern: each device
// writes only its own VNs' gradient sums, and sync_and_update combines
// them in ascending VN-id order, so kStrictVnOrder stays bit-exact by
// construction no matter how the pool schedules the work.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vf {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (must be >= 1).
  explicit ThreadPool(std::int64_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::int64_t size() const { return static_cast<std::int64_t>(workers_.size()); }

  /// Runs fn(i) for every i in [0, n), distributing indices over the
  /// workers, and blocks until the loop is finished. If any invocation
  /// throws, indices not yet started are skipped (mirroring the serial
  /// loop, which stops at the first throw), in-flight invocations run to
  /// completion, and the first exception (in completion order) is
  /// rethrown here.
  void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn);

 private:
  /// Enqueues a task for some worker. Internal: tasks must not throw
  /// (an escaping exception would terminate the process), which
  /// parallel_for guarantees by catching inside its wrapper.
  void submit(std::function<void()> fn);

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace vf
