#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace vf {

double sum(const std::vector<double>& xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double mean(const std::vector<double>& xs) {
  check(!xs.empty(), "mean of empty vector");
  return sum(xs) / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  check(xs.size() >= 2, "stddev needs at least two samples");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
  check(!xs.empty(), "percentile of empty vector");
  check(p >= 0.0 && p <= 1.0, "percentile p must be in [0, 1]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double idx = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

std::vector<double> percentiles(std::vector<double> xs,
                                const std::vector<double>& ps) {
  check(!xs.empty(), "percentile of empty vector");
  for (const double p : ps)
    check(p >= 0.0 && p <= 1.0, "percentile p must be in [0, 1]");
  std::sort(xs.begin(), xs.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (const double p : ps) {
    if (xs.size() == 1) {
      out.push_back(xs[0]);
      continue;
    }
    // Same interpolation arithmetic as percentile(): the sorted sample
    // sequence is identical (doubles order totally here), so each read-out
    // is bit-equal to the one-sort-per-p path it replaces.
    const double idx = p * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, xs.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    out.push_back(xs[lo] * (1.0 - frac) + xs[hi] * frac);
  }
  return out;
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 0.5); }

double min_of(const std::vector<double>& xs) {
  check(!xs.empty(), "min of empty vector");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  check(!xs.empty(), "max of empty vector");
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> xs) {
  check(!xs.empty(), "cdf of empty vector");
  std::sort(xs.begin(), xs.end());
  std::vector<CdfPoint> out;
  out.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out.push_back({xs[i], static_cast<double>(i + 1) / static_cast<double>(xs.size())});
  }
  return out;
}

double pct_change(double a, double b) {
  check(a != 0.0, "pct_change baseline must be non-zero");
  return (b - a) / a * 100.0;
}

}  // namespace vf
