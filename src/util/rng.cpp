#include "util/rng.h"

#include <cmath>

#include "util/common.h"

namespace vf {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t tag) {
  return splitmix64(seed ^ splitmix64(tag + 0x9E3779B97F4A7C15ULL));
}

CounterRng::CounterRng(std::uint64_t seed, std::uint64_t stream)
    : key_(derive_seed(seed, stream)) {}

std::uint64_t CounterRng::next_u64() {
  return splitmix64(key_ + 0xD1B54A32D192ED03ULL * ++counter_);
}

double CounterRng::next_double() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float CounterRng::uniform(float lo, float hi) {
  return lo + static_cast<float>(next_double()) * (hi - lo);
}

float CounterRng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; clamp u1 away from 0 to keep log finite.
  double u1 = next_double();
  double u2 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = static_cast<float>(r * std::sin(theta));
  have_cached_normal_ = true;
  return static_cast<float>(r * std::cos(theta));
}

float CounterRng::normal(float mean, float stddev) { return mean + stddev * normal(); }

std::uint64_t CounterRng::next_below(std::uint64_t n) {
  check(n > 0, "next_below requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return x % n;
}

std::vector<std::int64_t> CounterRng::permutation(std::int64_t n) {
  check(n >= 0, "permutation size must be non-negative");
  std::vector<std::int64_t> p(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
  for (std::int64_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(p[static_cast<std::size_t>(i)], p[static_cast<std::size_t>(j)]);
  }
  return p;
}

}  // namespace vf
