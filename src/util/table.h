// Console table / CSV emission for the benchmark harnesses.
//
// Every bench binary prints the same rows the paper reports; this helper
// keeps the formatting consistent (aligned console table plus optional CSV
// next to it for plotting).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace vf {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with a fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Subsequent add_* calls fill it left to right.
  Table& row();

  Table& cell(std::string value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::int64_t value);
  Table& cell(int value);
  Table& cell(std::size_t value);

  /// Renders the aligned table.
  void print(std::ostream& os) const;

  /// Renders as CSV (headers + rows).
  void write_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (shared by Table and ad-hoc output).
std::string fmt_double(double v, int precision = 3);

/// Formats a byte count human-readably (e.g. "8.17 GB").
std::string fmt_bytes(double bytes);

/// Prints a section banner used between experiment phases in bench output.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace vf
