// Common error handling and small helpers shared by all VirtualFlow modules.
#pragma once

#include <cstdint>
#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace vf {

/// Base exception type for all VirtualFlow errors. Carries the source
/// location of the failed check so test failures point at the violated
/// invariant rather than the throw site machinery.
class VfError : public std::runtime_error {
 public:
  explicit VfError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a simulated device runs out of memory (see
/// device/memory_model.h). Distinct type so callers (e.g. the offline
/// profiler walking batch sizes upward) can catch OOM specifically.
class OomError : public VfError {
 public:
  explicit OomError(const std::string& what) : VfError(what) {}
};

namespace detail {
inline std::string locate(std::string_view msg, const std::source_location& loc) {
  std::string out;
  out += loc.file_name();
  out += ':';
  out += std::to_string(loc.line());
  out += ": ";
  out += msg;
  return out;
}
}  // namespace detail

/// Precondition / invariant check. Throws VfError on failure.
inline void check(bool cond, std::string_view msg,
                  const std::source_location loc = std::source_location::current()) {
  if (!cond) throw VfError(detail::locate(msg, loc));
}

/// Check specialized for index bounds; includes the offending value.
inline void check_index(std::int64_t i, std::int64_t n, std::string_view what,
                        const std::source_location loc = std::source_location::current()) {
  if (i < 0 || i >= n) {
    throw VfError(detail::locate(std::string(what) + " index " + std::to_string(i) +
                                     " out of range [0, " + std::to_string(n) + ")",
                                 loc));
  }
}

/// Integer ceil-divide for positive operands.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// True when `x` is a positive power of two.
constexpr bool is_pow2(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

// Byte-size literals used throughout the device memory model.
constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

}  // namespace vf
