#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

#include "util/common.h"

namespace vf {

ThreadPool::ThreadPool(std::int64_t num_threads) {
  check(num_threads >= 1, "ThreadPool needs at least one worker, got " +
                              std::to_string(num_threads));
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (std::int64_t t = 0; t < num_threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    check(!stop_, "submit on a stopped ThreadPool");
    queue_.push(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;

  // Shared completion state. Workers pull indices from an atomic counter;
  // per-index results belong to the caller's data structures, so the only
  // synchronization needed here is done-counting and exception capture.
  struct Sync {
    std::atomic<std::int64_t> next{0};
    std::atomic<bool> failed{false};
    std::int64_t done = 0;
    std::exception_ptr error;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto sync = std::make_shared<Sync>();

  const std::int64_t tasks = std::min<std::int64_t>(n, size());
  for (std::int64_t t = 0; t < tasks; ++t) {
    submit([sync, n, &fn] {
      std::int64_t finished = 0;
      std::exception_ptr first;
      for (;;) {
        const std::int64_t i = sync->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        // Once any index failed, claim-and-skip the rest: the serial path
        // stops at the first throw, so the parallel path must not keep
        // mutating caller state beyond work already in flight.
        if (!sync->failed.load(std::memory_order_acquire)) {
          try {
            fn(i);
          } catch (...) {
            if (!first) first = std::current_exception();
            sync->failed.store(true, std::memory_order_release);
          }
        }
        ++finished;
      }
      const std::lock_guard<std::mutex> lock(sync->mu);
      sync->done += finished;
      if (first && !sync->error) sync->error = first;
      sync->cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(sync->mu);
  sync->cv.wait(lock, [&sync, n] { return sync->done == n; });
  if (sync->error) std::rethrow_exception(sync->error);
}

}  // namespace vf
